//! A happens-before data-race detector (DJIT⁺-style vector clocks) — the
//! *precise* complement to the Eraser lockset heuristic. The paper cites
//! precise dynamic datarace detection (Choi et al., PLDI'02) among the
//! FF-T1 techniques; lockset over-approximates (it flags consistent-lock
//! violations even when accesses are ordered), while happens-before
//! reports exactly the unordered conflicting pairs *of the observed trace*.
//!
//! Synchronization edges come from the lock events of the normalized
//! stream: a `Release` publishes the releasing thread's clock into the
//! lock; an `Acquire` joins it. `wait` is a release followed (on wake-up)
//! by an acquire of the same lock, so notification ordering is captured
//! without extra event kinds.

use std::collections::HashMap;

use crate::normalize::{MonEvent, MonEventKind};

/// A vector clock: thread id → logical time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock(HashMap<u64, u64>);

impl VectorClock {
    /// The clock's component for `thread`.
    pub fn get(&self, thread: u64) -> u64 {
        self.0.get(&thread).copied().unwrap_or(0)
    }

    fn set(&mut self, thread: u64, value: u64) {
        self.0.insert(thread, value);
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VectorClock) {
        for (&t, &v) in &other.0 {
            let e = self.0.entry(t).or_insert(0);
            if *e < v {
                *e = v;
            }
        }
    }

    /// True when every component of `self` is ≤ the thread clock `of`.
    fn happens_before(&self, of: &VectorClock) -> bool {
        self.0.iter().all(|(&t, &v)| v <= of.get(t))
    }
}

/// A precise race: two accesses unordered by happens-before, at least one
/// a write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbRace {
    /// The variable.
    pub var: String,
    /// The second (racing) access's thread.
    pub thread: u64,
    /// Whether the second access was a write.
    pub on_write: bool,
    /// Index of the racing event in the analyzed stream.
    pub event_index: usize,
}

#[derive(Debug, Default)]
struct VarState {
    reads: VectorClock,
    writes: VectorClock,
}

/// The happens-before analyzer.
#[derive(Debug, Default)]
pub struct HbAnalyzer {
    threads: HashMap<u64, VectorClock>,
    locks: HashMap<u64, VectorClock>,
    vars: HashMap<String, VarState>,
    reported: std::collections::BTreeSet<String>,
    races: Vec<HbRace>,
    index: usize,
}

impl HbAnalyzer {
    /// A fresh analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run a whole normalized stream.
    pub fn analyze(events: &[MonEvent]) -> Vec<HbRace> {
        let mut a = Self::new();
        for e in events {
            a.observe(e);
        }
        a.into_races()
    }

    fn clock_of(&mut self, thread: u64) -> &mut VectorClock {
        self.threads.entry(thread).or_insert_with(|| {
            let mut vc = VectorClock::default();
            vc.set(thread, 1);
            vc
        })
    }

    /// Feed one event.
    pub fn observe(&mut self, event: &MonEvent) {
        let t = event.thread;
        match &event.kind {
            MonEventKind::Acquire(lock) => {
                if let Some(lvc) = self.locks.get(lock).cloned() {
                    self.clock_of(t).join(&lvc);
                }
            }
            MonEventKind::Release(lock) => {
                let tvc = self.clock_of(t).clone();
                self.locks.insert(*lock, tvc);
                // Tick the thread's own component so post-release work is
                // not ordered before a later acquirer's.
                let me = self.clock_of(t).get(t);
                self.clock_of(t).set(t, me + 1);
            }
            MonEventKind::Read(var) => self.access(t, var, false),
            MonEventKind::Write(var) => self.access(t, var, true),
        }
        self.index += 1;
    }

    fn access(&mut self, t: u64, var: &str, is_write: bool) {
        let tvc = self.clock_of(t).clone();
        let state = self.vars.entry(var.to_string()).or_default();
        let racy = if is_write {
            !state.writes.happens_before(&tvc) || !state.reads.happens_before(&tvc)
        } else {
            !state.writes.happens_before(&tvc)
        };
        if is_write {
            state.writes.set(t, tvc.get(t));
        } else {
            state.reads.set(t, tvc.get(t));
        }
        if racy && self.reported.insert(var.to_string()) {
            self.races.push(HbRace {
                var: var.to_string(),
                thread: t,
                on_write: is_write,
                event_index: self.index,
            });
        }
    }

    /// Finish and return the races.
    pub fn into_races(self) -> Vec<HbRace> {
        self.races
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acq(thread: u64, lock: u64) -> MonEvent {
        MonEvent {
            thread,
            kind: MonEventKind::Acquire(lock),
        }
    }
    fn rel(thread: u64, lock: u64) -> MonEvent {
        MonEvent {
            thread,
            kind: MonEventKind::Release(lock),
        }
    }
    fn rd(thread: u64, var: &str) -> MonEvent {
        MonEvent {
            thread,
            kind: MonEventKind::Read(var.to_string()),
        }
    }
    fn wr(thread: u64, var: &str) -> MonEvent {
        MonEvent {
            thread,
            kind: MonEventKind::Write(var.to_string()),
        }
    }

    #[test]
    fn lock_ordered_accesses_are_clean() {
        let events = vec![
            acq(1, 9),
            wr(1, "x"),
            rel(1, 9),
            acq(2, 9),
            rd(2, "x"),
            wr(2, "x"),
            rel(2, 9),
        ];
        assert!(HbAnalyzer::analyze(&events).is_empty());
    }

    #[test]
    fn unordered_write_write_races() {
        let events = vec![wr(1, "x"), wr(2, "x")];
        let races = HbAnalyzer::analyze(&events);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].thread, 2);
        assert!(races[0].on_write);
    }

    #[test]
    fn unordered_read_write_races() {
        let events = vec![rd(1, "x"), wr(2, "x")];
        let races = HbAnalyzer::analyze(&events);
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn concurrent_reads_do_not_race() {
        let events = vec![rd(1, "x"), rd(2, "x"), rd(3, "x")];
        assert!(HbAnalyzer::analyze(&events).is_empty());
    }

    #[test]
    fn hb_is_more_precise_than_lockset() {
        // Accesses protected by DIFFERENT locks but strictly ordered via a
        // third lock's release/acquire chain: lockset flags this (empty
        // intersection); happens-before correctly stays quiet.
        let events = vec![
            acq(1, 10),
            wr(1, "x"),
            rel(1, 10),
            // ordering handoff via lock 99
            acq(1, 99),
            rel(1, 99),
            acq(2, 99),
            rel(2, 99),
            acq(2, 20),
            wr(2, "x"),
            rel(2, 20),
        ];
        let hb = HbAnalyzer::analyze(&events);
        assert!(hb.is_empty(), "{hb:?}");
        let lockset = crate::lockset::LocksetAnalyzer::analyze(&events);
        // lockset candidates: first shared access by t2 holds {99}? —
        // t2's write under lock 20: candidates start at {20} then… the
        // key point is only that HB is quiet; lockset may or may not warn
        // depending on refinement order, so we don't assert on it here.
        let _ = lockset;
    }

    #[test]
    fn wait_style_release_acquire_orders_accesses() {
        // Consumer reads under the lock after a producer wrote under the
        // same lock — even with interleaved waits (release+acquire pairs).
        let events = vec![
            acq(2, 5),
            rel(2, 5), // consumer's wait: releases
            acq(1, 5),
            wr(1, "buf"),
            rel(1, 5), // producer fills and releases
            acq(2, 5), // consumer wakes, re-acquires
            rd(2, "buf"),
            rel(2, 5),
        ];
        assert!(HbAnalyzer::analyze(&events).is_empty());
    }

    #[test]
    fn one_report_per_variable() {
        let events = vec![wr(1, "x"), wr(2, "x"), wr(1, "x"), wr(2, "x")];
        assert_eq!(HbAnalyzer::analyze(&events).len(), 1);
    }

    #[test]
    fn racy_counter_detected_via_vm() {
        use jcc_vm::{compile, CallSpec, RunConfig, ThreadSpec, Vm};
        let c = jcc_model::examples::racy_counter();
        let mut vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                ThreadSpec {
                    name: "a".into(),
                    calls: vec![CallSpec::new("increment", vec![])],
                },
                ThreadSpec {
                    name: "b".into(),
                    calls: vec![CallSpec::new("increment", vec![])],
                },
            ],
        );
        let out = vm.run(&RunConfig::default());
        let races = HbAnalyzer::analyze(&crate::normalize::from_vm_trace(&out.trace));
        assert!(races.iter().any(|r| r.var == "count"), "{races:?}");
    }

    #[test]
    fn vector_clock_ops() {
        let mut a = VectorClock::default();
        a.set(1, 3);
        let mut b = VectorClock::default();
        b.set(1, 1);
        b.set(2, 5);
        a.join(&b);
        assert_eq!(a.get(1), 3);
        assert_eq!(a.get(2), 5);
        assert_eq!(a.get(7), 0);
    }
}
