//! Normalization of the two event sources (native runtime log, VM trace)
//! into one monitor-event shape the detectors consume.

use jcc_petri::Transition;
use jcc_runtime::{Event, EventKind};
use jcc_vm::{TraceEvent, TraceEventKind};

/// What a normalized event records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonEventKind {
    /// The thread now holds `lock` (T2; reentrant re-entries are invisible,
    /// which is correct for lockset purposes — the lock stays held).
    Acquire(u64),
    /// The thread no longer holds `lock` (T4, or the release half of T3).
    Release(u64),
    /// A read of a shared variable.
    Read(String),
    /// A write of a shared variable.
    Write(String),
}

/// A normalized monitor event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonEvent {
    /// Thread id (runtime thread id, or VM thread index widened).
    pub thread: u64,
    /// What happened.
    pub kind: MonEventKind,
}

/// Normalize a native runtime event log.
pub fn from_runtime_log(events: &[Event]) -> Vec<MonEvent> {
    let mut out = Vec::with_capacity(events.len());
    for e in events {
        let kind = match &e.kind {
            EventKind::Transition(Transition::T2) => Some(MonEventKind::Acquire(e.monitor.0)),
            EventKind::Transition(Transition::T3) | EventKind::Transition(Transition::T4) => {
                Some(MonEventKind::Release(e.monitor.0))
            }
            EventKind::Read { var } => Some(MonEventKind::Read(var.clone())),
            EventKind::Write { var } => Some(MonEventKind::Write(var.clone())),
            _ => None,
        };
        if let Some(kind) = kind {
            out.push(MonEvent {
                thread: e.thread,
                kind,
            });
        }
    }
    out
}

/// Normalize a VM trace. Lock indices become lock ids directly; VM thread
/// indices become thread ids.
pub fn from_vm_trace(trace: &[TraceEvent]) -> Vec<MonEvent> {
    let mut out = Vec::with_capacity(trace.len());
    for e in trace {
        let kind = match &e.kind {
            TraceEventKind::Transition {
                t: Transition::T2,
                lock,
            } => Some(MonEventKind::Acquire(*lock as u64)),
            TraceEventKind::Transition {
                t: Transition::T3,
                lock,
            }
            | TraceEventKind::Transition {
                t: Transition::T4,
                lock,
            } => Some(MonEventKind::Release(*lock as u64)),
            TraceEventKind::FieldRead { field } => Some(MonEventKind::Read(field.clone())),
            TraceEventKind::FieldWrite { field } => Some(MonEventKind::Write(field.clone())),
            _ => None,
        };
        if let Some(kind) = kind {
            out.push(MonEvent {
                thread: e.thread as u64,
                kind,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_runtime::{EventLog, JavaMonitor};

    #[test]
    fn runtime_log_normalizes_lock_events() {
        let log = EventLog::new();
        let m = JavaMonitor::new("m", &log, 0u32);
        {
            let g = m.enter();
            g.write("v", |d| *d = 1);
            g.read("v", |d| *d);
        }
        let norm = from_runtime_log(&log.snapshot());
        let kinds: Vec<_> = norm.iter().map(|e| &e.kind).collect();
        assert!(matches!(kinds[0], MonEventKind::Acquire(_)));
        assert!(matches!(kinds[1], MonEventKind::Write(v) if v == "v"));
        assert!(matches!(kinds[2], MonEventKind::Read(v) if v == "v"));
        assert!(matches!(kinds[3], MonEventKind::Release(_)));
    }

    #[test]
    fn vm_trace_normalizes() {
        use jcc_vm::{compile, CallSpec, RunConfig, ThreadSpec, Value, Vm};
        let c = jcc_model::examples::producer_consumer();
        let mut vm = Vm::new(
            compile(&c).unwrap(),
            vec![ThreadSpec {
                name: "p".into(),
                calls: vec![CallSpec::new("send", vec![Value::Str("a".into())])],
            }],
        );
        let out = vm.run(&RunConfig::default());
        let norm = from_vm_trace(&out.trace);
        // First lock event is the acquire of `this` (lock 0).
        let first_lock = norm
            .iter()
            .find(|e| matches!(e.kind, MonEventKind::Acquire(_)))
            .unwrap();
        assert_eq!(first_lock.kind, MonEventKind::Acquire(0));
        // Writes to contents/totalLength/curPos appear.
        let writes: Vec<_> = norm
            .iter()
            .filter_map(|e| match &e.kind {
                MonEventKind::Write(v) => Some(v.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(writes, vec!["contents", "totalLength", "curPos"]);
    }
}
