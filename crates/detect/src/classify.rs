//! Mapping detector output onto the ten Table-1 failure classes.

use std::fmt;

use jcc_petri::{Deviation, FailureClass, Transition};
use jcc_vm::{ExploreResult, RunOutcome, Verdict};

use crate::lockorder::LockOrderCycle;
use crate::lockset::RaceReport;

/// A classified finding: a Table-1 failure class with supporting evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The failure class.
    pub class: FailureClass,
    /// What was observed.
    pub evidence: String,
}

impl Finding {
    fn new(deviation: Deviation, transition: Transition, evidence: impl Into<String>) -> Self {
        Finding {
            class: FailureClass::new(deviation, transition),
            evidence: evidence.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.class.code(), self.evidence)
    }
}

/// Classify a single VM run outcome.
pub fn classify_outcome(outcome: &RunOutcome) -> Vec<Finding> {
    use Deviation::*;
    use Transition::*;
    let mut out = Vec::new();
    match &outcome.verdict {
        Verdict::Completed => {}
        Verdict::Deadlock { waiting, blocked } => {
            if !waiting.is_empty() {
                out.push(Finding::new(
                    FailureToFire,
                    T5,
                    format!(
                        "thread(s) {waiting:?} permanently suspended in a wait set — no \
                         notification will ever arrive"
                    ),
                ));
            }
            if !blocked.is_empty() {
                out.push(Finding::new(
                    FailureToFire,
                    T2,
                    format!(
                        "thread(s) {blocked:?} blocked forever acquiring an object lock"
                    ),
                ));
                out.push(Finding::new(
                    FailureToFire,
                    T4,
                    "some thread never released the lock the blocked threads need",
                ));
            }
        }
        Verdict::StepLimit => {
            out.push(Finding::new(
                FailureToFire,
                T4,
                "step budget exhausted — a thread loops without leaving its critical section \
                 (or the system livelocks)",
            ));
        }
        Verdict::Faulted { thread, message } => {
            if message.contains("IllegalMonitorState") {
                out.push(Finding::new(
                    FailureToFire,
                    T1,
                    format!(
                        "thread {thread} used wait/notify without entering the monitor: {message}"
                    ),
                ));
            } else {
                out.push(Finding::new(
                    FailureToFire,
                    T3,
                    format!(
                        "thread {thread} faulted inside the component ({message}) — a guard \
                         was bypassed (missed wait) or state was corrupted"
                    ),
                ));
            }
        }
    }
    out
}

/// Classify an exhaustive-exploration result.
pub fn classify_explore(result: &ExploreResult) -> Vec<Finding> {
    use Deviation::*;
    use Transition::*;
    let mut out = Vec::new();
    if let Some(w) = &result.deadlock_witness {
        out.extend(classify_outcome(w));
    }
    if let Some(w) = &result.fault_witness {
        out.extend(classify_outcome(w));
    }
    if result.cycle_paths > 0 {
        let evidence = if result.inescapable_cycles > 0 {
            format!(
                "{} schedule(s) enter a loop no other thread can break — a critical section \
                 is never left",
                result.inescapable_cycles
            )
        } else {
            format!(
                "{} schedule(s) can repeat a state forever without completing a call",
                result.cycle_paths
            )
        };
        out.push(Finding::new(FailureToFire, T4, evidence));
    }
    dedupe(&mut out);
    out
}

/// Classify lockset race reports (FF-T1: interference).
pub fn classify_races(races: &[RaceReport]) -> Vec<Finding> {
    races
        .iter()
        .map(|r| {
            Finding::new(
                Deviation::FailureToFire,
                Transition::T1,
                format!(
                    "variable `{}` accessed by multiple threads with an empty candidate \
                     lockset (thread {} {} without consistent locking)",
                    r.var,
                    r.thread,
                    if r.on_write { "wrote" } else { "read" }
                ),
            )
        })
        .collect()
}

/// Classify lock-order cycles (potential FF-T2: permanent suspension).
pub fn classify_cycles(cycles: &[LockOrderCycle]) -> Vec<Finding> {
    cycles
        .iter()
        .map(|c| {
            Finding::new(
                Deviation::FailureToFire,
                Transition::T2,
                format!(
                    "locks {:?} are acquired in inconsistent orders — two threads can block \
                     each other forever",
                    c.locks
                ),
            )
        })
        .collect()
}

/// One-call dynamic analysis of a normalized event stream: lockset races,
/// happens-before races and lock-order cycles, merged into Table-1
/// findings. A race flagged by *both* lockset and happens-before is
/// reported once, with the stronger (precise) evidence.
pub fn classify_trace_events(events: &[crate::normalize::MonEvent]) -> Vec<Finding> {
    let mut out = Vec::new();
    let hb_races = crate::hb::HbAnalyzer::analyze(events);
    let hb_vars: std::collections::BTreeSet<&str> =
        hb_races.iter().map(|r| r.var.as_str()).collect();
    for r in &hb_races {
        out.push(Finding::new(
            Deviation::FailureToFire,
            Transition::T1,
            format!(
                "variable `{}` has two unordered accesses (happens-before race, thread {} {})",
                r.var,
                r.thread,
                if r.on_write { "writing" } else { "reading" }
            ),
        ));
    }
    // Lockset findings only for variables HB did not already prove racy
    // (lockset is the heuristic over-approximation of the same failure).
    let lockset_races = crate::lockset::LocksetAnalyzer::analyze(events);
    for r in &lockset_races {
        if !hb_vars.contains(r.var.as_str()) {
            out.push(Finding::new(
                Deviation::FailureToFire,
                Transition::T1,
                format!(
                    "variable `{}` accessed with inconsistent locking (empty candidate lockset; no race observed in this trace, but none of the locks protects it)",
                    r.var
                ),
            ));
        }
    }
    let cycles = crate::lockorder::LockOrderGraph::build(events).cycles();
    out.extend(classify_cycles(&cycles));
    dedupe(&mut out);
    out
}

/// Classify lost notifications (FF-T5): notifications issued on a monitor
/// while its wait set was empty — a wake-up nobody could receive. One
/// finding per monitor, tallying every wasted notify.
pub fn classify_lost_notifications(events: &[jcc_runtime::Event]) -> Vec<Finding> {
    let mut counts: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for e in events {
        if let jcc_runtime::EventKind::NotifyIssued { waiters: 0, .. } = e.kind {
            *counts.entry(e.monitor.0).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .map(|(monitor, count)| {
            Finding::new(
                Deviation::FailureToFire,
                Transition::T5,
                format!(
                    "monitor {monitor} issued {count} notification(s) with no thread in the wait \
                     set — the wake-ups were lost"
                ),
            )
        })
        .collect()
}

/// The post-hoc reference for the online monitor's differential guarantee
/// (`jcc_runtime::online`): lockset races, lock-order cycles and lost
/// notifications over a full runtime event stream, in that order, deduped.
/// On any fully-sampled, no-drop stream,
/// `OnlineMonitor::verdicts()` byte-matches this classification — pinned
/// by the `online_monitor` integration suite.
///
/// (Deliberately *not* [`classify_trace_events`]: that one adds
/// happens-before analysis and suppresses lockset findings HB already
/// proved, which a single-pass online detector cannot reproduce.)
pub fn classify_runtime_events(events: &[jcc_runtime::Event]) -> Vec<Finding> {
    let norm = crate::normalize::from_runtime_log(events);
    let mut out = classify_races(&crate::lockset::LocksetAnalyzer::analyze(&norm));
    out.extend(classify_cycles(
        &crate::lockorder::LockOrderGraph::build(&norm).cycles(),
    ));
    out.extend(classify_lost_notifications(events));
    dedupe(&mut out);
    out
}

fn dedupe(findings: &mut Vec<Finding>) {
    let mut seen = std::collections::HashSet::new();
    findings.retain(|f| seen.insert((f.class, f.evidence.clone())));
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_model::examples;
    use jcc_model::mutate::{apply_mutation, enumerate_mutations, MutationKind};
    use jcc_vm::{compile, explore, CallSpec, ExploreConfig, RunConfig, ThreadSpec, Value, Vm};

    fn pc_threads() -> Vec<ThreadSpec> {
        vec![
            ThreadSpec {
                name: "c".into(),
                calls: vec![CallSpec::new("receive", vec![])],
            },
            ThreadSpec {
                name: "p".into(),
                calls: vec![CallSpec::new("send", vec![Value::Str("a".into())])],
            },
        ]
    }

    #[test]
    fn completed_run_has_no_findings() {
        let c = examples::producer_consumer();
        let mut vm = Vm::new(compile(&c).unwrap(), pc_threads());
        let out = vm.run(&RunConfig::default());
        assert!(classify_outcome(&out).is_empty());
    }

    #[test]
    fn lone_waiter_classified_ff_t5() {
        let c = examples::producer_consumer();
        let mut vm = Vm::new(
            compile(&c).unwrap(),
            vec![ThreadSpec {
                name: "c".into(),
                calls: vec![CallSpec::new("receive", vec![])],
            }],
        );
        let out = vm.run(&RunConfig::default());
        let findings = classify_outcome(&out);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].class.code(), "FF-T5");
    }

    #[test]
    fn drop_notify_mutant_classified_ff_t5_by_exploration() {
        let c = examples::producer_consumer();
        let m = enumerate_mutations(&c)
            .into_iter()
            .find(|m| m.kind == MutationKind::DropNotify && m.method == "send")
            .unwrap();
        let mutant = apply_mutation(&c, &m).unwrap();
        let vm = Vm::new(compile(&mutant).unwrap(), pc_threads());
        let r = explore(vm, &ExploreConfig::default(), None);
        let findings = classify_explore(&r);
        assert!(
            findings.iter().any(|f| f.class.code() == "FF-T5"),
            "{findings:?}"
        );
    }

    #[test]
    fn hold_lock_forever_classified_ff_t4() {
        let c = examples::producer_consumer();
        let m = enumerate_mutations(&c)
            .into_iter()
            .find(|m| m.kind == MutationKind::HoldLockForever && m.method == "send")
            .unwrap();
        let mutant = apply_mutation(&c, &m).unwrap();
        let vm = Vm::new(compile(&mutant).unwrap(), pc_threads());
        let r = explore(vm, &ExploreConfig::default(), None);
        let findings = classify_explore(&r);
        assert!(
            findings.iter().any(|f| f.class.code() == "FF-T4"),
            "{findings:?}"
        );
    }

    #[test]
    fn illegal_monitor_state_classified_ff_t1() {
        let c = examples::producer_consumer();
        let m = enumerate_mutations(&c)
            .into_iter()
            .find(|m| m.kind == MutationKind::DropSynchronized && m.method == "send")
            .unwrap();
        let mutant = apply_mutation(&c, &m).unwrap();
        let mut vm = Vm::new(compile(&mutant).unwrap(), pc_threads());
        let out = vm.run(&RunConfig::default());
        let findings = classify_outcome(&out);
        assert!(
            findings.iter().any(|f| f.class.code() == "FF-T1"),
            "{findings:?}"
        );
    }

    #[test]
    fn races_and_cycles_classified() {
        let races = vec![RaceReport {
            var: "count".into(),
            on_write: true,
            thread: 2,
            event_index: 5,
        }];
        let f = classify_races(&races);
        assert_eq!(f[0].class.code(), "FF-T1");
        assert!(f[0].evidence.contains("count"));

        let cycles = vec![LockOrderCycle { locks: vec![1, 2] }];
        let f = classify_cycles(&cycles);
        assert_eq!(f[0].class.code(), "FF-T2");
    }

    #[test]
    fn finding_display() {
        let f = Finding::new(Deviation::FailureToFire, Transition::T5, "lost wakeup");
        assert_eq!(f.to_string(), "FF-T5: lost wakeup");
    }

    #[test]
    fn classify_runtime_events_is_the_online_reference() {
        use jcc_petri::Transition as T;
        use jcc_runtime::{Event, EventKind, MonitorId};
        let ev = |seq: u64, thread: u64, monitor: u64, kind: EventKind| Event {
            seq,
            thread,
            monitor: MonitorId(monitor),
            kind,
        };
        let events = vec![
            // Unprotected cross-thread writes: FF-T1 on `x`.
            ev(0, 1, 0, EventKind::Write { var: "x".into() }),
            ev(1, 2, 0, EventKind::Write { var: "x".into() }),
            // Opposite nesting of monitors 1 and 2: FF-T2.
            ev(2, 1, 1, EventKind::Transition(T::T2)),
            ev(3, 1, 2, EventKind::Transition(T::T2)),
            ev(4, 1, 2, EventKind::Transition(T::T4)),
            ev(5, 1, 1, EventKind::Transition(T::T4)),
            ev(6, 2, 2, EventKind::Transition(T::T2)),
            ev(7, 2, 1, EventKind::Transition(T::T2)),
            ev(8, 2, 1, EventKind::Transition(T::T4)),
            ev(9, 2, 2, EventKind::Transition(T::T4)),
            // Two wasted notifies on monitor 3: FF-T5, tallied once.
            ev(10, 1, 3, EventKind::NotifyIssued { all: false, waiters: 0 }),
            ev(11, 1, 3, EventKind::NotifyIssued { all: true, waiters: 0 }),
            // A received notify is not lost.
            ev(12, 1, 2, EventKind::NotifyIssued { all: true, waiters: 1 }),
            // Capture gaps are ignored post-hoc.
            ev(13, 2, 0, EventKind::CaptureGap { dropped: 5 }),
        ];
        let texts: Vec<String> = classify_runtime_events(&events)
            .iter()
            .map(|f| f.to_string())
            .collect();
        assert_eq!(texts.len(), 3, "{texts:?}");
        assert!(texts[0].starts_with("FF-T1") && texts[0].contains("`x`"), "{texts:?}");
        assert!(texts[1].starts_with("FF-T2") && texts[1].contains("[1, 2]"), "{texts:?}");
        assert_eq!(
            texts[2],
            "FF-T5: monitor 3 issued 2 notification(s) with no thread in the wait \
             set — the wake-ups were lost"
        );
    }

    #[test]
    fn classify_trace_events_merges_detectors() {
        use crate::normalize::{MonEvent, MonEventKind};
        // An HB race on `x`, a lockset-only inconsistency on `y` (ordered
        // via a handoff lock but protected by different locks), and a lock
        // order cycle between 8 and 9.
        let e = |thread, kind| MonEvent { thread, kind };
        use MonEventKind::*;
        let events = vec![
            // HB race on x
            e(1, Write("x".into())),
            e(2, Write("x".into())),
            // y: thread 1 under lock 10, handoff to thread 2 via lock 7,
            // thread 2 under lock 20, handoff back via lock 6, thread 1
            // under lock 10 again — every pair ordered, but no common lock.
            e(1, Acquire(10)),
            e(1, Write("y".into())),
            e(1, Release(10)),
            e(1, Acquire(7)),
            e(1, Release(7)),
            e(2, Acquire(7)),
            e(2, Release(7)),
            e(2, Acquire(20)),
            e(2, Write("y".into())),
            e(2, Release(20)),
            e(2, Acquire(6)),
            e(2, Release(6)),
            e(1, Acquire(6)),
            e(1, Release(6)),
            e(1, Acquire(10)),
            e(1, Write("y".into())),
            e(1, Release(10)),
            // lock-order cycle
            e(3, Acquire(8)),
            e(3, Acquire(9)),
            e(3, Release(9)),
            e(3, Release(8)),
            e(4, Acquire(9)),
            e(4, Acquire(8)),
            e(4, Release(8)),
            e(4, Release(9)),
        ];
        let findings = classify_trace_events(&events);
        let texts: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        assert!(
            texts.iter().any(|t| t.contains("`x`") && t.contains("happens-before")),
            "{texts:?}"
        );
        assert!(
            texts.iter().any(|t| t.contains("`y`") && t.contains("inconsistent locking")),
            "{texts:?}"
        );
        assert!(
            texts.iter().any(|t| t.starts_with("FF-T2")),
            "{texts:?}"
        );
        // x reported once, by the precise detector only.
        assert_eq!(
            texts.iter().filter(|t| t.contains("`x`")).count(),
            1,
            "{texts:?}"
        );
    }
}
