//! Recursive-descent parser for the component DSL.
//!
//! Grammar (EBNF, whitespace and `//` comments insignificant):
//!
//! ```text
//! component  := "class" IDENT "{" decl* "}"
//! decl       := "lock" IDENT ";"
//!             | "var" IDENT ":" type "=" literal ";"
//!             | ("synchronized")? "fn" IDENT "(" params? ")" ("->" type)? block
//! params     := IDENT ":" type ("," IDENT ":" type)*
//! block      := "{" stmt* "}"
//! stmt       := "while" "(" expr ")" block
//!             | "if" "(" expr ")" block ("else" block)?
//!             | "wait" ("(" lockref ")")? ";"
//!             | "notify" ("(" lockref ")")? ";"
//!             | "notifyAll" ("(" lockref ")")? ";"
//!             | "synchronized" "(" lockref ")" block
//!             | "return" expr? ";"
//!             | "let" IDENT ":" type "=" expr ";"
//!             | "skip" ";"
//!             | IDENT "=" expr ";"            (assignment; fields shadowable by locals)
//! lockref    := "this" | IDENT
//! expr       := or-expression with C-like precedence:
//!               ||  <  &&  <  == !=  <  < <= > >=  <  + -  <  * / %  <  unary ! -
//! primary    := INT | STRING | "true" | "false" | IDENT | builtin "(" args ")" | "(" expr ")"
//! ```
//!
//! Name resolution of `IDENT` in expressions (local vs field) is done later
//! by the validator; the parser emits [`Expr::Var`] and the validator
//! rewrites to [`Expr::Field`] — callers should use [`parse_component`],
//! which runs that resolution pass.

use std::fmt;

use crate::ast::{
    BinOp, Block, Builtin, Component, Expr, Field, LValue, LockRef, Method, Param, Stmt, Type,
    UnOp,
};
use crate::lexer::{lex, LexError, Token, TokenKind};

/// A parse error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parse a component from DSL source and resolve field references.
pub fn parse_component(src: &str) -> Result<Component, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut component = p.component()?;
    resolve_names(&mut component);
    Ok(component)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let t = &self.tokens[self.pos];
        Err(ParseError {
            message: format!("{} (found `{}`)", message.into(), t.kind),
            line: t.line,
            col: t.col,
        })
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if *self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            self.error(format!("expected `{kind}`"))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            _ => self.error("expected identifier"),
        }
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        match self.advance() {
            TokenKind::IntTy => Ok(Type::Int),
            TokenKind::BoolTy => Ok(Type::Bool),
            TokenKind::StrTy => Ok(Type::Str),
            _ => {
                self.pos -= 1;
                self.error("expected type (`int`, `bool` or `str`)")
            }
        }
    }

    fn component(&mut self) -> Result<Component, ParseError> {
        self.expect(TokenKind::Class)?;
        let name = self.ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        let mut locks = Vec::new();
        loop {
            match self.peek() {
                TokenKind::RBrace => {
                    self.advance();
                    break;
                }
                TokenKind::Lock => {
                    self.advance();
                    locks.push(self.ident()?);
                    self.expect(TokenKind::Semi)?;
                }
                TokenKind::Var => {
                    self.advance();
                    let fname = self.ident()?;
                    self.expect(TokenKind::Colon)?;
                    let ty = self.ty()?;
                    self.expect(TokenKind::Assign)?;
                    let init = self.expr()?;
                    self.expect(TokenKind::Semi)?;
                    fields.push(Field {
                        name: fname,
                        ty,
                        init,
                    });
                }
                TokenKind::Synchronized | TokenKind::Fn => {
                    methods.push(self.method()?);
                }
                TokenKind::Eof => return self.error("unexpected end of input in class body"),
                _ => return self.error("expected `var`, `lock`, `fn` or `}`"),
            }
        }
        if *self.peek() != TokenKind::Eof {
            return self.error("trailing input after class");
        }
        Ok(Component {
            name,
            locks,
            fields,
            methods,
        })
    }

    fn method(&mut self) -> Result<Method, ParseError> {
        let synchronized = if *self.peek() == TokenKind::Synchronized {
            self.advance();
            true
        } else {
            false
        };
        self.expect(TokenKind::Fn)?;
        let name = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                let pname = self.ident()?;
                self.expect(TokenKind::Colon)?;
                let ty = self.ty()?;
                params.push(Param { name: pname, ty });
                if *self.peek() == TokenKind::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let ret = if *self.peek() == TokenKind::Arrow {
            self.advance();
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(Method {
            name,
            params,
            ret,
            synchronized,
            body,
        })
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            if *self.peek() == TokenKind::Eof {
                return self.error("unexpected end of input in block");
            }
            stmts.push(self.stmt()?);
        }
        self.advance();
        Ok(stmts)
    }

    fn lockref_parens_opt(&mut self) -> Result<LockRef, ParseError> {
        if *self.peek() == TokenKind::LParen {
            self.advance();
            let r = self.lockref()?;
            self.expect(TokenKind::RParen)?;
            Ok(r)
        } else {
            Ok(LockRef::This)
        }
    }

    fn lockref(&mut self) -> Result<LockRef, ParseError> {
        match self.peek().clone() {
            TokenKind::This => {
                self.advance();
                Ok(LockRef::This)
            }
            TokenKind::Ident(name) => {
                self.advance();
                Ok(LockRef::Named(name))
            }
            _ => self.error("expected `this` or a lock name"),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            TokenKind::While => {
                self.advance();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::If => {
                self.advance();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let then_branch = self.block()?;
                let else_branch = if *self.peek() == TokenKind::Else {
                    self.advance();
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            TokenKind::Wait => {
                self.advance();
                let lock = self.lockref_parens_opt()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Wait { lock })
            }
            TokenKind::Notify => {
                self.advance();
                let lock = self.lockref_parens_opt()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Notify { lock })
            }
            TokenKind::NotifyAll => {
                self.advance();
                let lock = self.lockref_parens_opt()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::NotifyAll { lock })
            }
            TokenKind::Synchronized => {
                self.advance();
                self.expect(TokenKind::LParen)?;
                let lock = self.lockref()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::Synchronized { lock, body })
            }
            TokenKind::Return => {
                self.advance();
                if *self.peek() == TokenKind::Semi {
                    self.advance();
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            TokenKind::Let => {
                self.advance();
                let name = self.ident()?;
                self.expect(TokenKind::Colon)?;
                let ty = self.ty()?;
                self.expect(TokenKind::Assign)?;
                let init = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Local { name, ty, init })
            }
            TokenKind::Skip => {
                self.advance();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Skip)
            }
            TokenKind::Ident(name) => {
                if *self.peek2() == TokenKind::Assign {
                    self.advance();
                    self.advance();
                    let value = self.expr()?;
                    self.expect(TokenKind::Semi)?;
                    // Field-vs-local resolution happens in resolve_names.
                    Ok(Stmt::Assign {
                        target: LValue::Local(name),
                        value,
                    })
                } else {
                    self.error("expected `=` after identifier (only assignments may start with an identifier)")
                }
            }
            _ => self.error("expected a statement"),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == TokenKind::OrOr {
            self.advance();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality_expr()?;
        while *self.peek() == TokenKind::AndAnd {
            self.advance();
            let rhs = self.equality_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn equality_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.relational_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                _ => break,
            };
            self.advance();
            let rhs = self.relational_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn relational_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.advance();
            let rhs = self.additive_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn additive_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.multiplicative_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            TokenKind::Bang => {
                self.advance();
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Not, Box::new(e)))
            }
            TokenKind::Minus => {
                self.advance();
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Neg, Box::new(e)))
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.advance();
                Ok(Expr::Int(n))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Str(s))
            }
            TokenKind::True => {
                self.advance();
                Ok(Expr::Bool(true))
            }
            TokenKind::False => {
                self.advance();
                Ok(Expr::Bool(false))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if *self.peek2() == TokenKind::LParen {
                    let Some(builtin) = Builtin::by_name(&name) else {
                        return self.error(format!("unknown function `{name}`"));
                    };
                    self.advance();
                    self.advance();
                    let mut args = Vec::new();
                    if *self.peek() != TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == TokenKind::Comma {
                                self.advance();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(Expr::Call(builtin, args))
                } else {
                    self.advance();
                    Ok(Expr::Var(name))
                }
            }
            _ => self.error("expected an expression"),
        }
    }
}

/// Rewrite `Expr::Var` references that name component fields into
/// `Expr::Field`, and `LValue::Local` targets likewise, respecting local
/// shadowing. Locals are collected per method (block-scoped declarations are
/// treated method-wide, matching the validator's rules).
fn resolve_names(component: &mut Component) {
    let field_names: Vec<String> = component.fields.iter().map(|f| f.name.clone()).collect();
    for method in &mut component.methods {
        let mut locals: Vec<String> = method.params.iter().map(|p| p.name.clone()).collect();
        collect_locals(&method.body, &mut locals);
        let is_field =
            |name: &str| field_names.iter().any(|f| f == name) && !locals.iter().any(|l| l == name);
        rewrite_block(&mut method.body, &is_field);
    }
    // Field initializers may not reference anything, but resolve for safety.
    for field in &mut component.fields {
        rewrite_expr(&mut field.init, &|_| false);
    }
}

fn collect_locals(block: &Block, out: &mut Vec<String>) {
    for stmt in block {
        match stmt {
            Stmt::Local { name, .. } => out.push(name.clone()),
            Stmt::While { body, .. } | Stmt::Synchronized { body, .. } => {
                collect_locals(body, out)
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_locals(then_branch, out);
                collect_locals(else_branch, out);
            }
            _ => {}
        }
    }
}

fn rewrite_block(block: &mut Block, is_field: &impl Fn(&str) -> bool) {
    for stmt in block {
        match stmt {
            Stmt::While { cond, body } => {
                rewrite_expr(cond, is_field);
                rewrite_block(body, is_field);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                rewrite_expr(cond, is_field);
                rewrite_block(then_branch, is_field);
                rewrite_block(else_branch, is_field);
            }
            Stmt::Assign { target, value } => {
                rewrite_expr(value, is_field);
                if let LValue::Local(name) = target {
                    if is_field(name) {
                        *target = LValue::Field(name.clone());
                    }
                }
            }
            Stmt::Local { init, .. } => rewrite_expr(init, is_field),
            Stmt::Return(Some(e)) => rewrite_expr(e, is_field),
            Stmt::Synchronized { body, .. } => rewrite_block(body, is_field),
            _ => {}
        }
    }
}

fn rewrite_expr(expr: &mut Expr, is_field: &impl Fn(&str) -> bool) {
    match expr {
        Expr::Var(name)
            if is_field(name) => {
                *expr = Expr::Field(name.clone());
            }
        Expr::Unary(_, e) => rewrite_expr(e, is_field),
        Expr::Binary(_, a, b) => {
            rewrite_expr(a, is_field);
            rewrite_expr(b, is_field);
        }
        Expr::Call(_, args) => {
            for a in args {
                rewrite_expr(a, is_field);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr, LValue, LockRef, Stmt, Type};

    const PRODUCER_CONSUMER: &str = r#"
        class ProducerConsumer {
          var contents: str = "";
          var totalLength: int = 0;
          var curPos: int = 0;

          synchronized fn receive() -> str {
            while (curPos == 0) { wait; }
            let y: str = charAt(contents, totalLength - curPos);
            curPos = curPos - 1;
            notifyAll;
            return y;
          }

          synchronized fn send(x: str) {
            while (curPos > 0) { wait; }
            contents = x;
            totalLength = len(x);
            curPos = totalLength;
            notifyAll;
          }
        }
    "#;

    #[test]
    fn parses_producer_consumer() {
        let c = parse_component(PRODUCER_CONSUMER).unwrap();
        assert_eq!(c.name, "ProducerConsumer");
        assert_eq!(c.fields.len(), 3);
        assert_eq!(c.methods.len(), 2);
        let receive = c.method("receive").unwrap();
        assert!(receive.synchronized);
        assert_eq!(receive.ret, Some(Type::Str));
        assert_eq!(receive.body.len(), 5);
        // First statement: while (curPos == 0) { wait; }
        match &receive.body[0] {
            Stmt::While { cond, body } => {
                assert_eq!(
                    *cond,
                    Expr::Binary(
                        BinOp::Eq,
                        Box::new(Expr::Field("curPos".into())),
                        Box::new(Expr::Int(0))
                    )
                );
                assert_eq!(body.len(), 1);
                assert!(matches!(body[0], Stmt::Wait { lock: LockRef::This }));
            }
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn field_references_resolved() {
        let c = parse_component(PRODUCER_CONSUMER).unwrap();
        let send = c.method("send").unwrap();
        // `contents = x;` — contents is a field, x is a param.
        match &send.body[1] {
            Stmt::Assign { target, value } => {
                assert_eq!(*target, LValue::Field("contents".into()));
                assert_eq!(*value, Expr::Var("x".into()));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn local_shadows_field() {
        let src = r#"
            class S {
              var x: int = 1;
              fn m() -> int {
                let x: int = 2;
                return x;
              }
            }
        "#;
        let c = parse_component(src).unwrap();
        match &c.method("m").unwrap().body[1] {
            Stmt::Return(Some(Expr::Var(name))) => assert_eq!(name, "x"),
            other => panic!("expected return of local var, got {other:?}"),
        }
    }

    #[test]
    fn named_locks_and_synchronized_blocks() {
        let src = r#"
            class TwoLocks {
              lock a;
              lock b;
              fn m() {
                synchronized (a) {
                  synchronized (b) { skip; }
                }
              }
            }
        "#;
        let c = parse_component(src).unwrap();
        assert_eq!(c.locks, vec!["a".to_string(), "b".to_string()]);
        match &c.method("m").unwrap().body[0] {
            Stmt::Synchronized { lock, body } => {
                assert_eq!(*lock, LockRef::Named("a".into()));
                assert!(matches!(
                    body[0],
                    Stmt::Synchronized {
                        lock: LockRef::Named(ref n),
                        ..
                    } if n == "b"
                ));
            }
            other => panic!("expected synchronized, got {other:?}"),
        }
    }

    #[test]
    fn wait_notify_with_explicit_lock() {
        let src = r#"
            class W {
              lock l;
              fn m() {
                synchronized (l) { wait(l); notify(l); notifyAll(l); }
              }
            }
        "#;
        let c = parse_component(src).unwrap();
        match &c.method("m").unwrap().body[0] {
            Stmt::Synchronized { body, .. } => {
                assert!(
                    matches!(&body[0], Stmt::Wait { lock: LockRef::Named(n) } if n == "l")
                );
                assert!(
                    matches!(&body[1], Stmt::Notify { lock: LockRef::Named(n) } if n == "l")
                );
                assert!(
                    matches!(&body[2], Stmt::NotifyAll { lock: LockRef::Named(n) } if n == "l")
                );
            }
            other => panic!("expected synchronized, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let src = r#"
            class P { fn m() -> bool { return 1 + 2 * 3 == 7 && true || false; } }
        "#;
        let c = parse_component(src).unwrap();
        let Stmt::Return(Some(e)) = &c.methods[0].body[0] else {
            panic!()
        };
        // ((1 + (2*3)) == 7 && true) || false
        match e {
            Expr::Binary(BinOp::Or, lhs, rhs) => {
                assert_eq!(**rhs, Expr::Bool(false));
                match &**lhs {
                    Expr::Binary(BinOp::And, l2, r2) => {
                        assert_eq!(**r2, Expr::Bool(true));
                        assert!(matches!(&**l2, Expr::Binary(BinOp::Eq, _, _)));
                    }
                    other => panic!("expected &&, got {other:?}"),
                }
            }
            other => panic!("expected ||, got {other:?}"),
        }
    }

    #[test]
    fn if_else_parses() {
        let src = r#"
            class B { fn m(v: int) -> int {
              if (v > 0) { return 1; } else { return 0 - 1; }
            } }
        "#;
        let c = parse_component(src).unwrap();
        match &c.methods[0].body[0] {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                assert_eq!(then_branch.len(), 1);
                assert_eq!(else_branch.len(), 1);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn error_positions_reported() {
        let err = parse_component("class X { var y }").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("expected"), "{}", err.message);
    }

    #[test]
    fn unknown_function_rejected() {
        let err = parse_component("class X { fn m() { let a: int = frobnicate(1); } }")
            .unwrap_err();
        assert!(err.message.contains("unknown function"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse_component("class X { } class Y { }").unwrap_err();
        assert!(err.message.contains("trailing input"));
    }

    #[test]
    fn unary_operators_parse() {
        let src = "class U { fn m(b: bool, n: int) -> bool { return !b && -n < 0; } }";
        let c = parse_component(src).unwrap();
        assert!(matches!(&c.methods[0].body[0], Stmt::Return(Some(_))));
    }
}
