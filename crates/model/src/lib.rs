//! # jcc-model — the Monitor IR (MIR): an AST for Java-monitor components
//!
//! The paper's Concurrency Flow Graphs are built from the *statement
//! structure* of a Java component: which statements are concurrency
//! statements (`synchronized` entry/exit, `wait`, `notify`, `notifyAll`) and
//! what code regions lie between them. This crate provides exactly that
//! structure as an AST ([`ast`]), together with:
//!
//! * a lexer and recursive-descent parser for a small Java-like DSL so
//!   components can be written textually ([`lexer`], [`parser`]),
//! * a pretty-printer that round-trips through the parser ([`pretty`]),
//! * a static validator / type checker ([`validate`]),
//! * mutation operators that seed exactly the failure classes of the paper's
//!   Table 1 ([`mutate`]),
//! * reference component sources used across the workspace ([`examples`]).
//!
//! The interpreter for this IR lives in `jcc-vm`; CoFG extraction lives in
//! `jcc-cofg`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod examples;
pub mod lexer;
pub mod mutate;
pub mod parser;
pub mod pretty;
pub mod validate;

pub use ast::{
    BinOp, Block, Component, Expr, Field, LockRef, Method, Param, Stmt, Type, UnOp,
};
pub use mutate::{Mutation, MutationKind};
pub use parser::{parse_component, ParseError};
pub use validate::{validate, ValidationError};
