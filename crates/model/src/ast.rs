//! The Monitor IR: components, methods, statements and expressions.
//!
//! The IR models the Java subset the paper's method operates on: classes
//! whose methods may be `synchronized`, with `wait` / `notify` / `notifyAll`
//! on the receiver's monitor (or a named auxiliary lock), `while`/`if`
//! control flow and simple integer / boolean / string state.

use std::fmt;

/// A scalar type in the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// Immutable string.
    Str,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Type::Int => "int",
            Type::Bool => "bool",
            Type::Str => "str",
        })
    }
}

/// Which monitor a lock operation refers to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LockRef {
    /// The component instance itself (Java `this`).
    This,
    /// A named auxiliary lock object declared on the component.
    Named(String),
}

impl fmt::Display for LockRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockRef::This => f.write_str("this"),
            LockRef::Named(n) => f.write_str(n),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` on integers.
    Add,
    /// `-` on integers.
    Sub,
    /// `*` on integers.
    Mul,
    /// `/` on integers (trapping on division by zero at run time).
    Div,
    /// `%` on integers.
    Mod,
    /// `==` on any matching types.
    Eq,
    /// `!=` on any matching types.
    Ne,
    /// `<` on integers.
    Lt,
    /// `<=` on integers.
    Le,
    /// `>` on integers.
    Gt,
    /// `>=` on integers.
    Ge,
    /// `&&` (short-circuiting).
    And,
    /// `||` (short-circuiting).
    Or,
}

impl BinOp {
    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Boolean negation.
    Not,
}

/// Built-in (pure) functions available in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `len(s: str) -> int`
    Len,
    /// `charAt(s: str, i: int) -> str` — a one-character string; traps when
    /// out of bounds (mirrors Java's `StringIndexOutOfBoundsException`).
    CharAt,
    /// `concat(a: str, b: str) -> str`
    Concat,
    /// `toStr(i: int) -> str`
    ToStr,
}

impl Builtin {
    /// Surface name of the builtin.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Len => "len",
            Builtin::CharAt => "charAt",
            Builtin::Concat => "concat",
            Builtin::ToStr => "toStr",
        }
    }

    /// Parameter types.
    pub fn param_types(self) -> &'static [Type] {
        match self {
            Builtin::Len => &[Type::Str],
            Builtin::CharAt => &[Type::Str, Type::Int],
            Builtin::Concat => &[Type::Str, Type::Str],
            Builtin::ToStr => &[Type::Int],
        }
    }

    /// Return type.
    pub fn return_type(self) -> Type {
        match self {
            Builtin::Len => Type::Int,
            Builtin::CharAt => Type::Str,
            Builtin::Concat => Type::Str,
            Builtin::ToStr => Type::Str,
        }
    }

    /// Look up a builtin by surface name.
    pub fn by_name(name: &str) -> Option<Builtin> {
        match name {
            "len" => Some(Builtin::Len),
            "charAt" => Some(Builtin::CharAt),
            "concat" => Some(Builtin::Concat),
            "toStr" => Some(Builtin::ToStr),
            _ => None,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// A local variable or parameter.
    Var(String),
    /// A field of the component (`this.<name>` in Java terms).
    Field(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Builtin call.
    Call(Builtin, Vec<Expr>),
}

impl Expr {
    /// Convenience: `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Eq, Box::new(a), Box::new(b))
    }

    /// Convenience: field reference.
    pub fn field(name: &str) -> Expr {
        Expr::Field(name.to_string())
    }

    /// Convenience: variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }
}

/// The target of an assignment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LValue {
    /// A component field.
    Field(String),
    /// A method-local variable.
    Local(String),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// `while (cond) { body }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `if (cond) { then } else { els }`
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken when the condition is true.
        then_branch: Block,
        /// Taken when the condition is false (possibly empty).
        else_branch: Block,
    },
    /// `wait;` — suspend on `lock`'s wait set, releasing the lock.
    Wait {
        /// The monitor waited on.
        lock: LockRef,
    },
    /// `notify;` — wake one arbitrary waiter of `lock`.
    Notify {
        /// The monitor notified.
        lock: LockRef,
    },
    /// `notifyAll;` — wake every waiter of `lock`.
    NotifyAll {
        /// The monitor notified.
        lock: LockRef,
    },
    /// `target = value;`
    Assign {
        /// Assignment target.
        target: LValue,
        /// Right-hand side.
        value: Expr,
    },
    /// `let name: ty = init;`
    Local {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Initializer.
        init: Expr,
    },
    /// `return;` or `return expr;`
    Return(Option<Expr>),
    /// `synchronized (lock) { body }` — an explicit nested block.
    Synchronized {
        /// The monitor locked for the block's duration.
        lock: LockRef,
        /// Statements executed under the lock.
        body: Block,
    },
    /// `skip;` — no-op, useful as a mutation placeholder.
    Skip,
}

/// A sequence of statements.
pub type Block = Vec<Stmt>;

/// A method parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// A method of a component.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Method {
    /// Method name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Return type, or `None` for void.
    pub ret: Option<Type>,
    /// Whether the whole body runs under the receiver's monitor
    /// (Java `synchronized` method).
    pub synchronized: bool,
    /// Method body.
    pub body: Block,
}

/// A field of a component with its initial value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Initial value (a literal expression).
    pub init: Expr,
}

/// A concurrent component: a class with state and (typically synchronized)
/// methods, tested under the assumption of multiple-thread access.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Component {
    /// Class name.
    pub name: String,
    /// Declared auxiliary lock objects (besides the implicit `this`).
    pub locks: Vec<String>,
    /// Fields with initializers.
    pub fields: Vec<Field>,
    /// Methods.
    pub methods: Vec<Method>,
}

impl Component {
    /// Find a method by name.
    pub fn method(&self, name: &str) -> Option<&Method> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Find a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// Walk every statement of a block in pre-order, with a mutable visitor.
pub fn visit_stmts<'a>(block: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for stmt in block {
        f(stmt);
        match stmt {
            Stmt::While { body, .. } | Stmt::Synchronized { body, .. } => visit_stmts(body, f),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                visit_stmts(then_branch, f);
                visit_stmts(else_branch, f);
            }
            _ => {}
        }
    }
}

/// Count statements in a block, including nested ones.
pub fn count_stmts(block: &Block) -> usize {
    let mut n = 0;
    visit_stmts(block, &mut |_| n += 1);
    n
}

/// A path addressing a statement within a method body: a sequence of
/// (child index within block) steps, descending through `While`/`If`/
/// `Synchronized` bodies. `If` paths step into the then-branch for step
/// value `i` when addressing `then_branch[i]`; a sentinel offset of
/// `ELSE_OFFSET + i` addresses `else_branch[i]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StmtPath(pub Vec<usize>);

/// Offset marking else-branch steps inside a [`StmtPath`].
pub const ELSE_OFFSET: usize = 1 << 16;

/// Resolve a path to a statement reference, if valid.
///
/// Each step selects a child of the current block; when descending into an
/// `If`, the *next* step's `ELSE_OFFSET` flag selects which branch is
/// entered.
pub fn stmt_at<'a>(block: &'a Block, path: &StmtPath) -> Option<&'a Stmt> {
    if path.0.is_empty() {
        return None;
    }
    let mut cur_block = block;
    for depth in 0..path.0.len() {
        let step = path.0[depth];
        let idx = if step >= ELSE_OFFSET { step - ELSE_OFFSET } else { step };
        if depth + 1 == path.0.len() {
            return cur_block.get(idx);
        }
        let next_is_else = path.0[depth + 1] >= ELSE_OFFSET;
        cur_block = match cur_block.get(idx)? {
            Stmt::While { body, .. } | Stmt::Synchronized { body, .. } => body,
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                if next_is_else {
                    else_branch
                } else {
                    then_branch
                }
            }
            _ => return None,
        };
    }
    None
}

/// Resolve a path to a mutable statement reference, if valid.
/// Same path semantics as [`stmt_at`].
pub fn stmt_at_mut<'a>(block: &'a mut Block, path: &StmtPath) -> Option<&'a mut Stmt> {
    if path.0.is_empty() {
        return None;
    }
    let mut cur_block = block;
    for depth in 0..path.0.len() {
        let step = path.0[depth];
        let idx = if step >= ELSE_OFFSET { step - ELSE_OFFSET } else { step };
        if depth + 1 == path.0.len() {
            return cur_block.get_mut(idx);
        }
        let next_is_else = path.0[depth + 1] >= ELSE_OFFSET;
        cur_block = match cur_block.get_mut(idx)? {
            Stmt::While { body, .. } | Stmt::Synchronized { body, .. } => body,
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                if next_is_else {
                    else_branch
                } else {
                    then_branch
                }
            }
            _ => return None,
        };
    }
    None
}

/// Remove the statement addressed by `path`, returning it. Same path
/// semantics as [`stmt_at`].
pub fn remove_stmt_at(block: &mut Block, path: &StmtPath) -> Option<Stmt> {
    if path.0.is_empty() {
        return None;
    }
    let mut cur_block = block;
    for depth in 0..path.0.len() {
        let step = path.0[depth];
        let idx = if step >= ELSE_OFFSET { step - ELSE_OFFSET } else { step };
        if depth + 1 == path.0.len() {
            if idx < cur_block.len() {
                return Some(cur_block.remove(idx));
            }
            return None;
        }
        let next_is_else = path.0[depth + 1] >= ELSE_OFFSET;
        cur_block = match cur_block.get_mut(idx)? {
            Stmt::While { body, .. } | Stmt::Synchronized { body, .. } => body,
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                if next_is_else {
                    else_branch
                } else {
                    then_branch
                }
            }
            _ => return None,
        };
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> Block {
        vec![
            Stmt::While {
                cond: Expr::Bool(true),
                body: vec![Stmt::Wait { lock: LockRef::This }, Stmt::Skip],
            },
            Stmt::NotifyAll { lock: LockRef::This },
        ]
    }

    #[test]
    fn visit_counts_nested() {
        let b = sample_block();
        assert_eq!(count_stmts(&b), 4);
    }

    #[test]
    fn stmt_at_resolves_nested_path() {
        let b = sample_block();
        let wait = stmt_at(&b, &StmtPath(vec![0, 0])).unwrap();
        assert!(matches!(wait, Stmt::Wait { .. }));
        let skip = stmt_at(&b, &StmtPath(vec![0, 1])).unwrap();
        assert!(matches!(skip, Stmt::Skip));
        let notify = stmt_at(&b, &StmtPath(vec![1])).unwrap();
        assert!(matches!(notify, Stmt::NotifyAll { .. }));
        assert!(stmt_at(&b, &StmtPath(vec![5])).is_none());
        assert!(stmt_at(&b, &StmtPath(vec![1, 0])).is_none());
    }

    #[test]
    fn stmt_at_mut_allows_replacement() {
        let mut b = sample_block();
        *stmt_at_mut(&mut b, &StmtPath(vec![0, 0])).unwrap() = Stmt::Skip;
        let replaced = stmt_at(&b, &StmtPath(vec![0, 0])).unwrap();
        assert!(matches!(replaced, Stmt::Skip));
    }

    #[test]
    fn builtin_lookup_and_signatures() {
        for b in [Builtin::Len, Builtin::CharAt, Builtin::Concat, Builtin::ToStr] {
            assert_eq!(Builtin::by_name(b.name()), Some(b));
        }
        assert_eq!(Builtin::by_name("nope"), None);
        assert_eq!(Builtin::CharAt.param_types(), &[Type::Str, Type::Int]);
        assert_eq!(Builtin::CharAt.return_type(), Type::Str);
    }

    #[test]
    fn else_branch_paths() {
        let b: Block = vec![Stmt::If {
            cond: Expr::Bool(true),
            then_branch: vec![Stmt::Skip],
            else_branch: vec![Stmt::Return(None)],
        }];
        let then_stmt = stmt_at(&b, &StmtPath(vec![0, 0])).unwrap();
        assert!(matches!(then_stmt, Stmt::Skip));
        let else_stmt = stmt_at(&b, &StmtPath(vec![0, ELSE_OFFSET])).unwrap();
        assert!(matches!(else_stmt, Stmt::Return(None)));
    }

    #[test]
    fn component_lookup() {
        let c = Component {
            name: "X".into(),
            locks: vec![],
            fields: vec![Field {
                name: "n".into(),
                ty: Type::Int,
                init: Expr::Int(0),
            }],
            methods: vec![Method {
                name: "m".into(),
                params: vec![],
                ret: None,
                synchronized: true,
                body: vec![],
            }],
        };
        assert!(c.method("m").is_some());
        assert!(c.method("q").is_none());
        assert!(c.field("n").is_some());
        assert!(c.field("q").is_none());
    }
}
