//! Lexer for the component DSL — a Java-flavoured surface syntax for the
//! Monitor IR.
//!
//! ```text
//! class ProducerConsumer {
//!   var contents: str = "";
//!   var curPos: int = 0;
//!
//!   synchronized fn receive() -> str {
//!     while (curPos == 0) { wait; }
//!     ...
//!   }
//! }
//! ```

use std::fmt;

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// The token kinds of the DSL.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Keywords
    /// `class`
    Class,
    /// `var`
    Var,
    /// `lock`
    Lock,
    /// `fn`
    Fn,
    /// `synchronized`
    Synchronized,
    /// `while`
    While,
    /// `if`
    If,
    /// `else`
    Else,
    /// `wait`
    Wait,
    /// `notify`
    Notify,
    /// `notifyAll`
    NotifyAll,
    /// `return`
    Return,
    /// `let`
    Let,
    /// `skip`
    Skip,
    /// `this`
    This,
    /// `true`
    True,
    /// `false`
    False,
    /// `int`
    IntTy,
    /// `bool`
    BoolTy,
    /// `str`
    StrTy,

    // Literals and identifiers
    /// An integer literal.
    Int(i64),
    /// A string literal (unescaped contents).
    Str(String),
    /// An identifier.
    Ident(String),

    // Punctuation
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `->`
    Arrow,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Int(n) => write!(f, "{n}"),
            Str(s) => write!(f, "{s:?}"),
            Ident(s) => write!(f, "{s}"),
            other => f.write_str(match other {
                Class => "class",
                Var => "var",
                Lock => "lock",
                Fn => "fn",
                Synchronized => "synchronized",
                While => "while",
                If => "if",
                Else => "else",
                Wait => "wait",
                Notify => "notify",
                NotifyAll => "notifyAll",
                Return => "return",
                Let => "let",
                Skip => "skip",
                This => "this",
                True => "true",
                False => "false",
                IntTy => "int",
                BoolTy => "bool",
                StrTy => "str",
                LBrace => "{",
                RBrace => "}",
                LParen => "(",
                RParen => ")",
                Semi => ";",
                Colon => ":",
                Comma => ",",
                Arrow => "->",
                Assign => "=",
                EqEq => "==",
                NotEq => "!=",
                Lt => "<",
                Le => "<=",
                Gt => ">",
                Ge => ">=",
                Plus => "+",
                Minus => "-",
                Star => "*",
                Slash => "/",
                Percent => "%",
                AndAnd => "&&",
                OrOr => "||",
                Bang => "!",
                Eof => "<eof>",
                Int(_) | Str(_) | Ident(_) => unreachable!(),
            }),
        }
    }
}

/// A lexing error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Explanation.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src`, including a trailing [`TokenKind::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! err {
        ($($arg:tt)*) => {
            return Err(LexError { message: format!($($arg)*), line, col })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let (tline, tcol) = (line, col);
        let mut push = |kind: TokenKind| {
            tokens.push(Token {
                kind,
                line: tline,
                col: tcol,
            })
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                push(TokenKind::LBrace);
                i += 1;
                col += 1;
            }
            '}' => {
                push(TokenKind::RBrace);
                i += 1;
                col += 1;
            }
            '(' => {
                push(TokenKind::LParen);
                i += 1;
                col += 1;
            }
            ')' => {
                push(TokenKind::RParen);
                i += 1;
                col += 1;
            }
            ';' => {
                push(TokenKind::Semi);
                i += 1;
                col += 1;
            }
            ':' => {
                push(TokenKind::Colon);
                i += 1;
                col += 1;
            }
            ',' => {
                push(TokenKind::Comma);
                i += 1;
                col += 1;
            }
            '+' => {
                push(TokenKind::Plus);
                i += 1;
                col += 1;
            }
            '*' => {
                push(TokenKind::Star);
                i += 1;
                col += 1;
            }
            '/' => {
                push(TokenKind::Slash);
                i += 1;
                col += 1;
            }
            '%' => {
                push(TokenKind::Percent);
                i += 1;
                col += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    push(TokenKind::Arrow);
                    i += 2;
                    col += 2;
                } else {
                    push(TokenKind::Minus);
                    i += 1;
                    col += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(TokenKind::EqEq);
                    i += 2;
                    col += 2;
                } else {
                    push(TokenKind::Assign);
                    i += 1;
                    col += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(TokenKind::NotEq);
                    i += 2;
                    col += 2;
                } else {
                    push(TokenKind::Bang);
                    i += 1;
                    col += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(TokenKind::Le);
                    i += 2;
                    col += 2;
                } else {
                    push(TokenKind::Lt);
                    i += 1;
                    col += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(TokenKind::Ge);
                    i += 2;
                    col += 2;
                } else {
                    push(TokenKind::Gt);
                    i += 1;
                    col += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    push(TokenKind::AndAnd);
                    i += 2;
                    col += 2;
                } else {
                    err!("expected `&&`");
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    push(TokenKind::OrOr);
                    i += 2;
                    col += 2;
                } else {
                    err!("expected `||`");
                }
            }
            '"' => {
                let mut s = String::new();
                let mut j = i + 1;
                let mut ccol = col + 1;
                loop {
                    match bytes.get(j) {
                        None => err!("unterminated string literal"),
                        Some(&b'"') => break,
                        Some(&b'\\') => match bytes.get(j + 1) {
                            Some(&b'n') => {
                                s.push('\n');
                                j += 2;
                                ccol += 2;
                            }
                            Some(&b'"') => {
                                s.push('"');
                                j += 2;
                                ccol += 2;
                            }
                            Some(&b'\\') => {
                                s.push('\\');
                                j += 2;
                                ccol += 2;
                            }
                            _ => err!("unknown escape sequence"),
                        },
                        Some(&b'\n') => err!("newline in string literal"),
                        Some(&b) => {
                            s.push(b as char);
                            j += 1;
                            ccol += 1;
                        }
                    }
                }
                push(TokenKind::Str(s));
                i = j + 1;
                col = ccol + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
                let text = &src[start..i];
                match text.parse::<i64>() {
                    Ok(n) => push(TokenKind::Int(n)),
                    Err(_) => err!("integer literal out of range: {text}"),
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                    col += 1;
                }
                let word = &src[start..i];
                push(match word {
                    "class" => TokenKind::Class,
                    "var" => TokenKind::Var,
                    "lock" => TokenKind::Lock,
                    "fn" => TokenKind::Fn,
                    "synchronized" => TokenKind::Synchronized,
                    "while" => TokenKind::While,
                    "if" => TokenKind::If,
                    "else" => TokenKind::Else,
                    "wait" => TokenKind::Wait,
                    "notify" => TokenKind::Notify,
                    "notifyAll" => TokenKind::NotifyAll,
                    "return" => TokenKind::Return,
                    "let" => TokenKind::Let,
                    "skip" => TokenKind::Skip,
                    "this" => TokenKind::This,
                    "true" => TokenKind::True,
                    "false" => TokenKind::False,
                    "int" => TokenKind::IntTy,
                    "bool" => TokenKind::BoolTy,
                    "str" => TokenKind::StrTy,
                    _ => TokenKind::Ident(word.to_string()),
                });
            }
            other => err!("unexpected character `{other}`"),
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            kinds("class Foo synchronized fn"),
            vec![
                TokenKind::Class,
                TokenKind::Ident("Foo".into()),
                TokenKind::Synchronized,
                TokenKind::Fn,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("== != <= >= && || -> = < > ! + - * / %"),
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Arrow,
                TokenKind::Assign,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Bang,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(
            kinds(r#""hello" "a\nb" "q\"q" "back\\slash""#),
            vec![
                TokenKind::Str("hello".into()),
                TokenKind::Str("a\nb".into()),
                TokenKind::Str("q\"q".into()),
                TokenKind::Str("back\\slash".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("x // comment to end of line\ny"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Ident("y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn stray_ampersand_is_error() {
        let e = lex("a & b").unwrap_err();
        assert!(e.message.contains("&&"));
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("0 42 123456789"),
            vec![
                TokenKind::Int(0),
                TokenKind::Int(42),
                TokenKind::Int(123456789),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn newline_in_string_is_error() {
        assert!(lex("\"a\nb\"").is_err());
    }
}
