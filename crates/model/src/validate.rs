//! Static validation of Monitor IR components: name resolution, a simple
//! type checker, and the concurrency-context rules that Java enforces at
//! run time (`IllegalMonitorStateException`) — here rejected statically.
//!
//! Non-fatal warnings (wait-not-in-loop, missing notifiers, unnecessary
//! synchronization, and many more) live in `jcc_analyze::analyze`, which
//! reports them as severity-ranked, failure-class-keyed diagnostics.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{
    Block, Component, Expr, LValue, LockRef, Method, Stmt, Type, UnOp,
};

/// A validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A name was declared twice in the same scope.
    DuplicateName {
        /// The offending name.
        name: String,
        /// What kind of declaration it was.
        kind: &'static str,
    },
    /// An expression referenced an unknown variable or field.
    UnknownName {
        /// The unresolved name.
        name: String,
        /// Method in which it occurred.
        method: String,
    },
    /// A lock operation referenced an undeclared lock.
    UnknownLock {
        /// The unresolved lock name.
        name: String,
        /// Method in which it occurred.
        method: String,
    },
    /// Types did not match.
    TypeMismatch {
        /// What was being checked.
        context: String,
        /// Expected type.
        expected: Type,
        /// Type found.
        found: Type,
        /// Method in which it occurred.
        method: String,
    },
    /// Wrong number of arguments to a builtin.
    ArityMismatch {
        /// The builtin's name.
        builtin: &'static str,
        /// Expected argument count.
        expected: usize,
        /// Found argument count.
        found: usize,
        /// Method in which it occurred.
        method: String,
    },
    /// `wait`/`notify`/`notifyAll` used without holding the referenced
    /// monitor (Java's `IllegalMonitorStateException`, caught statically).
    MonitorNotHeld {
        /// The operation (`wait`, `notify`, `notifyAll`).
        operation: &'static str,
        /// The lock that would be required.
        lock: String,
        /// Method in which it occurred.
        method: String,
    },
    /// A `return expr;` in a void method, or `return;` in a value-returning
    /// method.
    ReturnMismatch {
        /// Method in which it occurred.
        method: String,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::DuplicateName { name, kind } => {
                write!(f, "duplicate {kind} `{name}`")
            }
            ValidationError::UnknownName { name, method } => {
                write!(f, "unknown name `{name}` in method `{method}`")
            }
            ValidationError::UnknownLock { name, method } => {
                write!(f, "unknown lock `{name}` in method `{method}`")
            }
            ValidationError::TypeMismatch {
                context,
                expected,
                found,
                method,
            } => write!(
                f,
                "type mismatch in {context} (method `{method}`): expected {expected}, found {found}"
            ),
            ValidationError::ArityMismatch {
                builtin,
                expected,
                found,
                method,
            } => write!(
                f,
                "`{builtin}` takes {expected} argument(s), found {found} (method `{method}`)"
            ),
            ValidationError::MonitorNotHeld {
                operation,
                lock,
                method,
            } => write!(
                f,
                "`{operation}` on `{lock}` outside its synchronized context in method `{method}`"
            ),
            ValidationError::ReturnMismatch { method, detail } => {
                write!(f, "return mismatch in method `{method}`: {detail}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate a component. Returns all errors found (empty = valid).
pub fn validate(component: &Component) -> Vec<ValidationError> {
    let mut errors = Vec::new();

    // Duplicate declarations.
    let mut seen = HashMap::new();
    for field in &component.fields {
        if seen.insert(field.name.clone(), ()).is_some() {
            errors.push(ValidationError::DuplicateName {
                name: field.name.clone(),
                kind: "field",
            });
        }
    }
    let mut seen_locks = HashMap::new();
    for lock in &component.locks {
        if seen_locks.insert(lock.clone(), ()).is_some() || seen.contains_key(lock) {
            errors.push(ValidationError::DuplicateName {
                name: lock.clone(),
                kind: "lock",
            });
        }
    }
    let mut seen_methods = HashMap::new();
    for method in &component.methods {
        if seen_methods.insert(method.name.clone(), ()).is_some() {
            errors.push(ValidationError::DuplicateName {
                name: method.name.clone(),
                kind: "method",
            });
        }
    }

    // Field initializers must be literals of the declared type.
    for field in &component.fields {
        let mut ctx = MethodCtx::new(component, "<field init>", &mut errors);
        if let Some(t) = ctx.expr_type(&field.init) {
            if t != field.ty {
                ctx.errors.push(ValidationError::TypeMismatch {
                    context: format!("initializer of field `{}`", field.name),
                    expected: field.ty,
                    found: t,
                    method: "<field init>".into(),
                });
            }
        }
    }

    for method in &component.methods {
        check_method(component, method, &mut errors);
    }
    errors
}

struct MethodCtx<'a> {
    component: &'a Component,
    method_name: &'a str,
    locals: HashMap<String, Type>,
    errors: &'a mut Vec<ValidationError>,
}

impl<'a> MethodCtx<'a> {
    fn new(
        component: &'a Component,
        method_name: &'a str,
        errors: &'a mut Vec<ValidationError>,
    ) -> Self {
        MethodCtx {
            component,
            method_name,
            locals: HashMap::new(),
            errors,
        }
    }

    fn expr_type(&mut self, expr: &Expr) -> Option<Type> {
        use crate::ast::BinOp::*;
        match expr {
            Expr::Int(_) => Some(Type::Int),
            Expr::Bool(_) => Some(Type::Bool),
            Expr::Str(_) => Some(Type::Str),
            Expr::Var(name) => {
                if let Some(&t) = self.locals.get(name) {
                    Some(t)
                } else {
                    self.errors.push(ValidationError::UnknownName {
                        name: name.clone(),
                        method: self.method_name.to_string(),
                    });
                    None
                }
            }
            Expr::Field(name) => match self.component.field(name) {
                Some(f) => Some(f.ty),
                None => {
                    self.errors.push(ValidationError::UnknownName {
                        name: name.clone(),
                        method: self.method_name.to_string(),
                    });
                    None
                }
            },
            Expr::Unary(op, e) => {
                let t = self.expr_type(e)?;
                let expected = match op {
                    UnOp::Neg => Type::Int,
                    UnOp::Not => Type::Bool,
                };
                if t != expected {
                    self.errors.push(ValidationError::TypeMismatch {
                        context: "unary operand".into(),
                        expected,
                        found: t,
                        method: self.method_name.to_string(),
                    });
                }
                Some(expected)
            }
            Expr::Binary(op, a, b) => {
                let ta = self.expr_type(a);
                let tb = self.expr_type(b);
                match op {
                    Add | Sub | Mul | Div | Mod => {
                        for t in [ta, tb].into_iter().flatten() {
                            if t != Type::Int {
                                self.errors.push(ValidationError::TypeMismatch {
                                    context: format!("operand of `{}`", op.symbol()),
                                    expected: Type::Int,
                                    found: t,
                                    method: self.method_name.to_string(),
                                });
                            }
                        }
                        Some(Type::Int)
                    }
                    Lt | Le | Gt | Ge => {
                        for t in [ta, tb].into_iter().flatten() {
                            if t != Type::Int {
                                self.errors.push(ValidationError::TypeMismatch {
                                    context: format!("operand of `{}`", op.symbol()),
                                    expected: Type::Int,
                                    found: t,
                                    method: self.method_name.to_string(),
                                });
                            }
                        }
                        Some(Type::Bool)
                    }
                    Eq | Ne => {
                        if let (Some(ta), Some(tb)) = (ta, tb) {
                            if ta != tb {
                                self.errors.push(ValidationError::TypeMismatch {
                                    context: format!("operands of `{}`", op.symbol()),
                                    expected: ta,
                                    found: tb,
                                    method: self.method_name.to_string(),
                                });
                            }
                        }
                        Some(Type::Bool)
                    }
                    And | Or => {
                        for t in [ta, tb].into_iter().flatten() {
                            if t != Type::Bool {
                                self.errors.push(ValidationError::TypeMismatch {
                                    context: format!("operand of `{}`", op.symbol()),
                                    expected: Type::Bool,
                                    found: t,
                                    method: self.method_name.to_string(),
                                });
                            }
                        }
                        Some(Type::Bool)
                    }
                }
            }
            Expr::Call(builtin, args) => {
                let params = builtin.param_types();
                if args.len() != params.len() {
                    self.errors.push(ValidationError::ArityMismatch {
                        builtin: builtin.name(),
                        expected: params.len(),
                        found: args.len(),
                        method: self.method_name.to_string(),
                    });
                }
                for (arg, &expected) in args.iter().zip(params) {
                    if let Some(found) = self.expr_type(arg) {
                        if found != expected {
                            self.errors.push(ValidationError::TypeMismatch {
                                context: format!("argument of `{}`", builtin.name()),
                                expected,
                                found,
                                method: self.method_name.to_string(),
                            });
                        }
                    }
                }
                Some(builtin.return_type())
            }
        }
    }
}

fn check_method(component: &Component, method: &Method, errors: &mut Vec<ValidationError>) {
    // Duplicate params.
    let mut seen = HashMap::new();
    for p in &method.params {
        if seen.insert(p.name.clone(), p.ty).is_some() {
            errors.push(ValidationError::DuplicateName {
                name: p.name.clone(),
                kind: "parameter",
            });
        }
    }
    let mut ctx = MethodCtx::new(component, &method.name, errors);
    ctx.locals = seen;

    // Initial held-locks: the receiver's monitor for synchronized methods.
    let mut held: Vec<LockRef> = Vec::new();
    if method.synchronized {
        held.push(LockRef::This);
    }
    check_block(&method.body, method, &mut ctx, &mut held);
}

fn lock_declared(component: &Component, lock: &LockRef) -> bool {
    match lock {
        LockRef::This => true,
        LockRef::Named(n) => component.locks.iter().any(|l| l == n),
    }
}

fn check_block(
    block: &Block,
    method: &Method,
    ctx: &mut MethodCtx<'_>,
    held: &mut Vec<LockRef>,
) {
    for stmt in block {
        match stmt {
            Stmt::While { cond, body } => {
                expect_type(ctx, cond, Type::Bool, "while condition");
                check_block(body, method, ctx, held);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                expect_type(ctx, cond, Type::Bool, "if condition");
                check_block(then_branch, method, ctx, held);
                check_block(else_branch, method, ctx, held);
            }
            Stmt::Wait { lock } | Stmt::Notify { lock } | Stmt::NotifyAll { lock } => {
                let op = match stmt {
                    Stmt::Wait { .. } => "wait",
                    Stmt::Notify { .. } => "notify",
                    _ => "notifyAll",
                };
                if !lock_declared(ctx.component, lock) {
                    ctx.errors.push(ValidationError::UnknownLock {
                        name: lock.to_string(),
                        method: method.name.clone(),
                    });
                } else if !held.contains(lock) {
                    ctx.errors.push(ValidationError::MonitorNotHeld {
                        operation: op,
                        lock: lock.to_string(),
                        method: method.name.clone(),
                    });
                }
            }
            Stmt::Assign { target, value } => {
                let target_ty = match target {
                    LValue::Field(name) => match ctx.component.field(name) {
                        Some(f) => Some(f.ty),
                        None => {
                            ctx.errors.push(ValidationError::UnknownName {
                                name: name.clone(),
                                method: method.name.clone(),
                            });
                            None
                        }
                    },
                    LValue::Local(name) => match ctx.locals.get(name).copied() {
                        Some(t) => Some(t),
                        None => {
                            ctx.errors.push(ValidationError::UnknownName {
                                name: name.clone(),
                                method: method.name.clone(),
                            });
                            None
                        }
                    },
                };
                if let (Some(expected), Some(found)) = (target_ty, ctx.expr_type(value)) {
                    if expected != found {
                        ctx.errors.push(ValidationError::TypeMismatch {
                            context: "assignment".into(),
                            expected,
                            found,
                            method: method.name.clone(),
                        });
                    }
                }
            }
            Stmt::Local { name, ty, init } => {
                if let Some(found) = ctx.expr_type(init) {
                    if found != *ty {
                        ctx.errors.push(ValidationError::TypeMismatch {
                            context: format!("initializer of `{name}`"),
                            expected: *ty,
                            found,
                            method: method.name.clone(),
                        });
                    }
                }
                if ctx.locals.insert(name.clone(), *ty).is_some() {
                    ctx.errors.push(ValidationError::DuplicateName {
                        name: name.clone(),
                        kind: "local",
                    });
                }
            }
            Stmt::Return(value) => match (&method.ret, value) {
                (Some(expected), Some(e)) => {
                    if let Some(found) = ctx.expr_type(e) {
                        if found != *expected {
                            ctx.errors.push(ValidationError::TypeMismatch {
                                context: "return value".into(),
                                expected: *expected,
                                found,
                                method: method.name.clone(),
                            });
                        }
                    }
                }
                (Some(_), None) => ctx.errors.push(ValidationError::ReturnMismatch {
                    method: method.name.clone(),
                    detail: "bare `return;` in a value-returning method".into(),
                }),
                (None, Some(_)) => ctx.errors.push(ValidationError::ReturnMismatch {
                    method: method.name.clone(),
                    detail: "`return <expr>;` in a void method".into(),
                }),
                (None, None) => {}
            },
            Stmt::Synchronized { lock, body } => {
                if !lock_declared(ctx.component, lock) {
                    ctx.errors.push(ValidationError::UnknownLock {
                        name: lock.to_string(),
                        method: method.name.clone(),
                    });
                }
                held.push(lock.clone());
                check_block(body, method, ctx, held);
                held.pop();
            }
            Stmt::Skip => {}
        }
    }
}

fn expect_type(ctx: &mut MethodCtx<'_>, expr: &Expr, expected: Type, context: &str) {
    if let Some(found) = ctx.expr_type(expr) {
        if found != expected {
            ctx.errors.push(ValidationError::TypeMismatch {
                context: context.into(),
                expected,
                found,
                method: ctx.method_name.to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_component;

    fn ok(src: &str) -> Component {
        let c = parse_component(src).unwrap();
        let errs = validate(&c);
        assert!(errs.is_empty(), "unexpected errors: {errs:?}");
        c
    }

    fn errs(src: &str) -> Vec<ValidationError> {
        let c = parse_component(src).unwrap();
        validate(&c)
    }

    #[test]
    fn producer_consumer_is_valid() {
        ok(crate::examples::PRODUCER_CONSUMER_SRC);
    }

    #[test]
    fn wait_outside_sync_rejected() {
        let e = errs("class X { fn m() { wait; } }");
        assert!(matches!(
            e[0],
            ValidationError::MonitorNotHeld { operation: "wait", .. }
        ));
    }

    #[test]
    fn notify_in_sync_block_on_other_lock_rejected() {
        let e = errs(
            "class X { lock a; lock b; fn m() { synchronized (a) { notify(b); } } }",
        );
        assert!(matches!(
            e[0],
            ValidationError::MonitorNotHeld { operation: "notify", .. }
        ));
    }

    #[test]
    fn notify_under_matching_block_ok() {
        ok("class X { lock a; fn m() { synchronized (a) { notifyAll(a); } } }");
    }

    #[test]
    fn unknown_lock_rejected() {
        let e = errs("class X { fn m() { synchronized (ghost) { skip; } } }");
        assert!(matches!(e[0], ValidationError::UnknownLock { .. }));
    }

    #[test]
    fn type_mismatch_in_condition() {
        let e = errs("class X { var n: int = 0; synchronized fn m() { while (n) { skip; } } }");
        assert!(matches!(e[0], ValidationError::TypeMismatch { .. }));
    }

    #[test]
    fn unknown_variable() {
        let e = errs("class X { fn m() { let a: int = ghost; } }");
        assert!(matches!(e[0], ValidationError::UnknownName { .. }));
    }

    #[test]
    fn arity_mismatch() {
        let e = errs(r#"class X { fn m() { let a: int = len("x", "y"); } }"#);
        assert!(matches!(e[0], ValidationError::ArityMismatch { .. }));
    }

    #[test]
    fn return_mismatches() {
        let e = errs("class X { fn m() -> int { return; } }");
        assert!(matches!(e[0], ValidationError::ReturnMismatch { .. }));
        let e = errs("class X { fn m() { return 3; } }");
        assert!(matches!(e[0], ValidationError::ReturnMismatch { .. }));
    }

    #[test]
    fn duplicate_declarations() {
        let e = errs("class X { var a: int = 0; var a: int = 1; }");
        assert!(matches!(e[0], ValidationError::DuplicateName { kind: "field", .. }));
        let e = errs("class X { fn m() { skip; } fn m() { skip; } }");
        assert!(matches!(e[0], ValidationError::DuplicateName { kind: "method", .. }));
        let e = errs("class X { fn m(a: int, a: int) { skip; } }");
        assert!(matches!(
            e[0],
            ValidationError::DuplicateName { kind: "parameter", .. }
        ));
    }

    #[test]
    fn field_initializer_type_checked() {
        let e = errs(r#"class X { var n: int = "oops"; }"#);
        assert!(matches!(e[0], ValidationError::TypeMismatch { .. }));
    }

    #[test]
    fn eq_requires_matching_types() {
        let e = errs(r#"class X { fn m() -> bool { return 1 == "one"; } }"#);
        assert!(matches!(e[0], ValidationError::TypeMismatch { .. }));
    }
}
