//! Pretty-printer for the Monitor IR. Output re-parses to the same AST
//! (`parse(print(c)) == c`), which the property tests rely on.

use std::fmt::Write as _;

use crate::ast::{BinOp, Block, Component, Expr, LValue, LockRef, Method, Stmt, UnOp};

/// Render a component in the DSL's surface syntax.
pub fn print_component(c: &Component) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "class {} {{", c.name);
    for lock in &c.locks {
        let _ = writeln!(out, "  lock {lock};");
    }
    for field in &c.fields {
        let _ = writeln!(
            out,
            "  var {}: {} = {};",
            field.name,
            field.ty,
            print_expr(&field.init)
        );
    }
    for method in &c.methods {
        out.push_str(&print_method(method, 1));
    }
    out.push_str("}\n");
    out
}

/// Render a single method at the given indent level.
pub fn print_method(m: &Method, indent: usize) -> String {
    let mut out = String::new();
    let pad = "  ".repeat(indent);
    let sync = if m.synchronized { "synchronized " } else { "" };
    let params = m
        .params
        .iter()
        .map(|p| format!("{}: {}", p.name, p.ty))
        .collect::<Vec<_>>()
        .join(", ");
    let ret = match m.ret {
        Some(t) => format!(" -> {t}"),
        None => String::new(),
    };
    let _ = writeln!(out, "{pad}{sync}fn {}({params}){ret} {{", m.name);
    out.push_str(&print_block(&m.body, indent + 1));
    let _ = writeln!(out, "{pad}}}");
    out
}

/// Render a block's statements at the given indent level.
pub fn print_block(block: &Block, indent: usize) -> String {
    let mut out = String::new();
    for stmt in block {
        out.push_str(&print_stmt(stmt, indent));
    }
    out
}

fn lock_suffix(lock: &LockRef) -> String {
    match lock {
        LockRef::This => String::new(),
        LockRef::Named(n) => format!("({n})"),
    }
}

/// Render one statement at the given indent level.
pub fn print_stmt(stmt: &Stmt, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    match stmt {
        Stmt::While { cond, body } => {
            let mut out = format!("{pad}while ({}) {{\n", print_expr(cond));
            out.push_str(&print_block(body, indent + 1));
            out.push_str(&format!("{pad}}}\n"));
            out
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let mut out = format!("{pad}if ({}) {{\n", print_expr(cond));
            out.push_str(&print_block(then_branch, indent + 1));
            if else_branch.is_empty() {
                out.push_str(&format!("{pad}}}\n"));
            } else {
                out.push_str(&format!("{pad}}} else {{\n"));
                out.push_str(&print_block(else_branch, indent + 1));
                out.push_str(&format!("{pad}}}\n"));
            }
            out
        }
        Stmt::Wait { lock } => format!("{pad}wait{};\n", lock_suffix(lock)),
        Stmt::Notify { lock } => format!("{pad}notify{};\n", lock_suffix(lock)),
        Stmt::NotifyAll { lock } => format!("{pad}notifyAll{};\n", lock_suffix(lock)),
        Stmt::Assign { target, value } => {
            let name = match target {
                LValue::Field(n) | LValue::Local(n) => n,
            };
            format!("{pad}{name} = {};\n", print_expr(value))
        }
        Stmt::Local { name, ty, init } => {
            format!("{pad}let {name}: {ty} = {};\n", print_expr(init))
        }
        Stmt::Return(None) => format!("{pad}return;\n"),
        Stmt::Return(Some(e)) => format!("{pad}return {};\n", print_expr(e)),
        Stmt::Synchronized { lock, body } => {
            let name = match lock {
                LockRef::This => "this".to_string(),
                LockRef::Named(n) => n.clone(),
            };
            let mut out = format!("{pad}synchronized ({name}) {{\n");
            out.push_str(&print_block(body, indent + 1));
            out.push_str(&format!("{pad}}}\n"));
            out
        }
        Stmt::Skip => format!("{pad}skip;\n"),
    }
}

/// Render an expression with minimal necessary parentheses (every binary
/// sub-expression is parenthesized for simplicity and re-parse fidelity).
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Int(n) => {
            if *n < 0 {
                // Negative literals print as unary negation to stay in the
                // grammar (the lexer has no negative literals).
                format!("(-{})", n.unsigned_abs())
            } else {
                n.to_string()
            }
        }
        Expr::Bool(b) => b.to_string(),
        Expr::Str(s) => format!(
            "\"{}\"",
            s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
        ),
        Expr::Var(n) | Expr::Field(n) => n.clone(),
        Expr::Unary(op, e) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{sym}{}", atom(e))
        }
        Expr::Binary(op, a, b) => {
            format!("({} {} {})", print_expr(a), op_symbol(*op), print_expr(b))
        }
        Expr::Call(builtin, args) => {
            let rendered = args.iter().map(print_expr).collect::<Vec<_>>().join(", ");
            format!("{}({rendered})", builtin.name())
        }
    }
}

fn atom(e: &Expr) -> String {
    match e {
        Expr::Binary(..) => print_expr(e), // already parenthesized
        Expr::Unary(..) => format!("({})", print_expr(e)),
        _ => print_expr(e),
    }
}

fn op_symbol(op: BinOp) -> &'static str {
    op.symbol()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_component;

    #[test]
    fn roundtrip_producer_consumer() {
        let src = r#"
            class ProducerConsumer {
              var contents: str = "";
              var totalLength: int = 0;
              var curPos: int = 0;
              synchronized fn receive() -> str {
                while (curPos == 0) { wait; }
                let y: str = charAt(contents, totalLength - curPos);
                curPos = curPos - 1;
                notifyAll;
                return y;
              }
              synchronized fn send(x: str) {
                while (curPos > 0) { wait; }
                contents = x;
                totalLength = len(x);
                curPos = totalLength;
                notifyAll;
              }
            }
        "#;
        let c1 = parse_component(src).unwrap();
        let printed = print_component(&c1);
        let c2 = parse_component(&printed).unwrap();
        assert_eq!(c1, c2, "pretty-printed source did not re-parse equal");
    }

    #[test]
    fn roundtrip_nested_control_flow() {
        let src = r#"
            class Nest {
              lock aux;
              var n: int = 0;
              synchronized fn m(k: int) -> int {
                if (k > 0) {
                  while (n < k) {
                    n = n + 1;
                    if (n % 2 == 0) { notify; } else { skip; }
                  }
                } else {
                  synchronized (aux) { wait(aux); }
                }
                return n;
              }
            }
        "#;
        let c1 = parse_component(src).unwrap();
        let c2 = parse_component(&print_component(&c1)).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let src = r#"class S { var s: str = "a\nb\"c\\d"; }"#;
        let c1 = parse_component(src).unwrap();
        let c2 = parse_component(&print_component(&c1)).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn negative_literal_prints_parseably() {
        let e = Expr::Int(-5);
        let printed = print_expr(&e);
        assert_eq!(printed, "(-5)");
        // Embedded in a component it must re-parse (as unary neg of 5).
        let src = format!("class N {{ fn m() -> int {{ return {printed}; }} }}");
        assert!(parse_component(&src).is_ok());
    }

    #[test]
    fn unary_chains_print_unambiguously() {
        let e = Expr::Unary(
            UnOp::Not,
            Box::new(Expr::Unary(UnOp::Not, Box::new(Expr::Bool(true)))),
        );
        let src = format!("class N {{ fn m() -> bool {{ return {}; }} }}", print_expr(&e));
        let c = parse_component(&src).unwrap();
        let c2 = parse_component(&print_component(&c)).unwrap();
        assert_eq!(c, c2);
    }
}
