//! Reference component sources in the DSL, shared across the workspace.
//!
//! `PRODUCER_CONSUMER_SRC` is the paper's Figure 2 — the asymmetric
//! producer–consumer monitor (the Java equivalent of Brinch Hansen's
//! Concurrent Pascal program): `send` stores a whole string, `receive`
//! drains it one character at a time.

use crate::ast::Component;
use crate::parser::parse_component;

/// The paper's Figure 2: the asymmetric producer–consumer monitor.
pub const PRODUCER_CONSUMER_SRC: &str = r#"
class ProducerConsumer {
  var contents: str = "";
  var totalLength: int = 0;
  var curPos: int = 0;

  // receive a single character
  synchronized fn receive() -> str {
    // wait if no character is available
    while (curPos == 0) {
      wait;
    }
    // retrieve character
    let y: str = charAt(contents, totalLength - curPos);
    curPos = curPos - 1;
    // notify blocked send/receive calls
    notifyAll;
    return y;
  }

  // send a string of characters
  synchronized fn send(x: str) {
    // wait if there are more characters
    while (curPos > 0) {
      wait;
    }
    // store string
    contents = x;
    totalLength = len(x);
    curPos = totalLength;
    // notify blocked send/receive calls
    notifyAll;
  }
}
"#;

/// A one-slot bounded buffer of integers (symmetric producer–consumer).
pub const BOUNDED_BUFFER_SRC: &str = r#"
class BoundedBuffer {
  var value: int = 0;
  var full: bool = false;

  synchronized fn put(v: int) {
    while (full) {
      wait;
    }
    value = v;
    full = true;
    notifyAll;
  }

  synchronized fn take() -> int {
    while (!full) {
      wait;
    }
    full = false;
    notifyAll;
    return value;
  }
}
"#;

/// A counting semaphore.
pub const SEMAPHORE_SRC: &str = r#"
class Semaphore {
  var permits: int = 0;

  synchronized fn init(n: int) {
    permits = n;
    notifyAll;
  }

  synchronized fn acquire() {
    while (permits == 0) {
      wait;
    }
    permits = permits - 1;
  }

  synchronized fn release() {
    permits = permits + 1;
    notifyAll;
  }
}
"#;

/// Readers–writers with writer preference, as a monitor.
pub const READERS_WRITERS_SRC: &str = r#"
class ReadersWriters {
  var readers: int = 0;
  var writing: bool = false;
  var writersWaiting: int = 0;

  synchronized fn startRead() {
    while (writing || writersWaiting > 0) {
      wait;
    }
    readers = readers + 1;
  }

  synchronized fn endRead() {
    readers = readers - 1;
    if (readers == 0) {
      notifyAll;
    }
  }

  synchronized fn startWrite() {
    writersWaiting = writersWaiting + 1;
    while (writing || readers > 0) {
      wait;
    }
    writersWaiting = writersWaiting - 1;
    writing = true;
  }

  synchronized fn endWrite() {
    writing = false;
    notifyAll;
  }
}
"#;

/// A cyclic barrier for a fixed party count (set by `init`).
pub const BARRIER_SRC: &str = r#"
class Barrier {
  var parties: int = 2;
  var arrived: int = 0;
  var generation: int = 0;

  synchronized fn init(n: int) {
    parties = n;
  }

  synchronized fn await() -> int {
    let gen: int = generation;
    arrived = arrived + 1;
    if (arrived == parties) {
      arrived = 0;
      generation = generation + 1;
      notifyAll;
      return gen;
    }
    while (generation == gen) {
      wait;
    }
    return gen;
  }
}
"#;

/// A two-lock component whose methods acquire the locks in opposite orders —
/// the canonical lock-order deadlock (FF-T2 / FF-T4 territory).
pub const LOCK_ORDER_DEADLOCK_SRC: &str = r#"
class LockOrder {
  lock a;
  lock b;
  var n: int = 0;

  fn forward() {
    synchronized (a) {
      synchronized (b) {
        n = n + 1;
      }
    }
  }

  fn backward() {
    synchronized (b) {
      synchronized (a) {
        n = n - 1;
      }
    }
  }
}
"#;

/// Three dining philosophers, all picking up their left fork first — the
/// classic circular-wait FF-T2 specimen (cycle f0 → f1 → f2 → f0).
pub const DINING_DEADLOCK_SRC: &str = r#"
class DiningDeadlock {
  lock f0;
  lock f1;
  lock f2;
  var meals: int = 0;

  fn eat0() {
    synchronized (f0) {
      synchronized (f1) {
        meals = meals + 1;
      }
    }
  }

  fn eat1() {
    synchronized (f1) {
      synchronized (f2) {
        meals = meals + 1;
      }
    }
  }

  fn eat2() {
    synchronized (f2) {
      synchronized (f0) {
        meals = meals + 1;
      }
    }
  }
}
"#;

/// Three dining philosophers with a resource hierarchy: the last
/// philosopher picks up the lower-numbered fork first, breaking the cycle
/// (the textbook fix).
pub const DINING_ORDERED_SRC: &str = r#"
class DiningOrdered {
  lock f0;
  lock f1;
  lock f2;
  var meals: int = 0;

  fn eat0() {
    synchronized (f0) {
      synchronized (f1) {
        meals = meals + 1;
      }
    }
  }

  fn eat1() {
    synchronized (f1) {
      synchronized (f2) {
        meals = meals + 1;
      }
    }
  }

  fn eat2() {
    synchronized (f0) {
      synchronized (f2) {
        meals = meals + 1;
      }
    }
  }
}
"#;

/// An *unsynchronized* counter: two racy methods updating shared state with
/// no mutual exclusion — a pure FF-T1 (interference) specimen.
pub const RACY_COUNTER_SRC: &str = r#"
class RacyCounter {
  var count: int = 0;

  fn increment() {
    let t: int = count;
    count = t + 1;
  }

  synchronized fn get() -> int {
    return count;
  }
}
"#;

fn parse_named(src: &str) -> Component {
    let c = parse_component(src).expect("reference source parses");
    let errors = crate::validate::validate(&c);
    assert!(errors.is_empty(), "reference source invalid: {errors:?}");
    c
}

/// Parse Figure 2's producer–consumer monitor.
pub fn producer_consumer() -> Component {
    parse_named(PRODUCER_CONSUMER_SRC)
}

/// Parse the one-slot bounded buffer.
pub fn bounded_buffer() -> Component {
    parse_named(BOUNDED_BUFFER_SRC)
}

/// Parse the counting semaphore.
pub fn semaphore() -> Component {
    parse_named(SEMAPHORE_SRC)
}

/// Parse the readers–writers monitor.
pub fn readers_writers() -> Component {
    parse_named(READERS_WRITERS_SRC)
}

/// Parse the cyclic barrier.
pub fn barrier() -> Component {
    parse_named(BARRIER_SRC)
}

/// Parse the lock-order deadlock specimen.
pub fn lock_order_deadlock() -> Component {
    parse_named(LOCK_ORDER_DEADLOCK_SRC)
}

/// Parse the circular-wait dining philosophers.
pub fn dining_deadlock() -> Component {
    parse_named(DINING_DEADLOCK_SRC)
}

/// Parse the hierarchy-ordered dining philosophers.
pub fn dining_ordered() -> Component {
    parse_named(DINING_ORDERED_SRC)
}

/// Parse the racy counter specimen.
pub fn racy_counter() -> Component {
    parse_named(RACY_COUNTER_SRC)
}

/// All well-formed corpus components (name, component) — the "range of
/// concurrent components" the paper's future work calls for.
pub fn corpus() -> Vec<(&'static str, Component)> {
    vec![
        ("ProducerConsumer", producer_consumer()),
        ("BoundedBuffer", bounded_buffer()),
        ("Semaphore", semaphore()),
        ("ReadersWriters", readers_writers()),
        ("Barrier", barrier()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_examples_parse_and_validate() {
        let _ = producer_consumer();
        let _ = bounded_buffer();
        let _ = semaphore();
        let _ = readers_writers();
        let _ = barrier();
        let _ = lock_order_deadlock();
        let _ = racy_counter();
        let _ = dining_deadlock();
        let _ = dining_ordered();
    }

    #[test]
    fn dining_specimens_differ_only_in_fork_order() {
        let d = dining_deadlock();
        let o = dining_ordered();
        assert_eq!(d.locks, o.locks);
        assert_eq!(d.methods.len(), o.methods.len());
        assert_ne!(
            d.method("eat2").unwrap().body,
            o.method("eat2").unwrap().body
        );
    }

    #[test]
    fn corpus_has_five_components() {
        let corpus = corpus();
        assert_eq!(corpus.len(), 5);
        // All corpus components use wait/notify (the deadlock and race
        // specimens are deliberately excluded).
        for (name, c) in &corpus {
            let mut has_wait = false;
            for m in &c.methods {
                crate::ast::visit_stmts(&m.body, &mut |s| {
                    if matches!(s, crate::ast::Stmt::Wait { .. }) {
                        has_wait = true;
                    }
                });
            }
            assert!(has_wait, "{name} should use wait");
        }
    }

    #[test]
    fn figure_2_shape() {
        let c = producer_consumer();
        assert_eq!(c.methods.len(), 2);
        assert!(c.method("receive").unwrap().synchronized);
        assert!(c.method("send").unwrap().synchronized);
        assert_eq!(c.fields.len(), 3);
    }
}
