//! Mutation operators that seed exactly the concurrency failures classified
//! in the paper's Table 1.
//!
//! Each [`MutationKind`] maps to the [`FailureClass`] it is designed to
//! provoke; the mutation study (experiment E5) measures which test-selection
//! strategy detects which class. Mutants are generated from a valid
//! component and remain *parseable and type-correct* — only their
//! concurrency behaviour changes.

use std::fmt;

use jcc_petri::{Deviation, FailureClass, Transition};

use crate::ast::{
    remove_stmt_at, stmt_at, stmt_at_mut, Block, Component, Expr, LockRef, Stmt,
    StmtPath, Type,
};

/// The ten mutation operators, one (or two) per Table-1 failure class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationKind {
    /// Remove `synchronized` from a method — threads interfere on shared
    /// state. Seeds **FF-T1** (interference / data race).
    DropSynchronized,
    /// Wrap an already-synchronized method body in a redundant
    /// `synchronized (this)` block. Seeds **EF-T1** (unnecessary
    /// synchronization — an inefficiency, not a failure; reentrancy makes
    /// it behaviourally neutral).
    AddRedundantSync,
    /// Replace a `wait` with `skip` — the thread barges through its guard.
    /// Seeds **FF-T3** (missed wait).
    SkipWait,
    /// Turn a wait-loop `while (cond) { … wait … }` into `if` — the thread
    /// re-enters the critical section without re-checking its predicate
    /// after waking. Exposes **EF-T5** (premature re-entry).
    WaitIfInsteadOfWhile,
    /// Insert an unconditional `wait` at the start of a synchronized method.
    /// Seeds **EF-T3** (erroneous call to wait).
    SpuriousWait,
    /// Replace a `notifyAll` with `notify` — with several distinguishable
    /// waiters, some are never woken. Seeds **FF-T5** (lost notification).
    NotifyInsteadOfNotifyAll,
    /// Remove a `notify`/`notifyAll` entirely. Seeds **FF-T5**.
    DropNotify,
    /// Negate the condition of a wait-loop — the thread waits exactly when
    /// it should not and vice versa. Seeds **FF-T3** and **EF-T3** at once.
    NegateWaitCondition,
    /// Insert an early `return` immediately before a top-level
    /// `notify`/`notifyAll` — the lock is released prematurely and the
    /// notification never happens. Seeds **EF-T4** (premature release).
    EarlyReturn,
    /// Insert `while (true) { skip; }` at the start of a synchronized
    /// method — the thread never releases the lock. Seeds **FF-T4**
    /// (retained lock; permanently blocks all other threads → their FF-T2).
    HoldLockForever,
}

impl MutationKind {
    /// All operators.
    pub const ALL: [MutationKind; 10] = [
        MutationKind::DropSynchronized,
        MutationKind::AddRedundantSync,
        MutationKind::SkipWait,
        MutationKind::WaitIfInsteadOfWhile,
        MutationKind::SpuriousWait,
        MutationKind::NotifyInsteadOfNotifyAll,
        MutationKind::DropNotify,
        MutationKind::NegateWaitCondition,
        MutationKind::EarlyReturn,
        MutationKind::HoldLockForever,
    ];

    /// The primary Table-1 failure class this operator seeds.
    pub fn seeded_class(self) -> FailureClass {
        use Deviation::*;
        use Transition::*;
        let (d, t) = match self {
            MutationKind::DropSynchronized => (FailureToFire, T1),
            MutationKind::AddRedundantSync => (ErroneousFiring, T1),
            MutationKind::SkipWait => (FailureToFire, T3),
            MutationKind::WaitIfInsteadOfWhile => (ErroneousFiring, T5),
            MutationKind::SpuriousWait => (ErroneousFiring, T3),
            MutationKind::NotifyInsteadOfNotifyAll => (FailureToFire, T5),
            MutationKind::DropNotify => (FailureToFire, T5),
            MutationKind::NegateWaitCondition => (FailureToFire, T3),
            MutationKind::EarlyReturn => (ErroneousFiring, T4),
            MutationKind::HoldLockForever => (FailureToFire, T4),
        };
        FailureClass::new(d, t)
    }

    /// Whether the paper classifies the seeded deviation as a genuine
    /// failure (EF-T1 is "not necessarily a serious problem, … simply
    /// introduces inefficiency").
    pub fn is_behavioural_failure(self) -> bool {
        !matches!(self, MutationKind::AddRedundantSync)
    }

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::DropSynchronized => "drop_synchronized",
            MutationKind::AddRedundantSync => "add_redundant_sync",
            MutationKind::SkipWait => "skip_wait",
            MutationKind::WaitIfInsteadOfWhile => "wait_if_instead_of_while",
            MutationKind::SpuriousWait => "spurious_wait",
            MutationKind::NotifyInsteadOfNotifyAll => "notify_instead_of_notify_all",
            MutationKind::DropNotify => "drop_notify",
            MutationKind::NegateWaitCondition => "negate_wait_condition",
            MutationKind::EarlyReturn => "early_return",
            MutationKind::HoldLockForever => "hold_lock_forever",
        }
    }
}

impl fmt::Display for MutationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete mutation site: operator, method and (where applicable) the
/// statement path the operator rewrites.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mutation {
    /// The operator.
    pub kind: MutationKind,
    /// Name of the mutated method.
    pub method: String,
    /// Statement path within the method body, for statement-level operators.
    pub path: Option<StmtPath>,
}

impl Mutation {
    /// A stable human-readable label, e.g. `receive::skip_wait@[0.0]`.
    pub fn label(&self) -> String {
        match &self.path {
            Some(p) => {
                let steps: Vec<String> = p.0.iter().map(|s| s.to_string()).collect();
                format!("{}::{}@[{}]", self.method, self.kind, steps.join("."))
            }
            None => format!("{}::{}", self.method, self.kind),
        }
    }
}

/// Errors applying a mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutateError {
    /// The named method does not exist.
    NoSuchMethod(String),
    /// The path did not resolve to the statement shape the operator needs.
    BadSite(String),
}

impl fmt::Display for MutateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutateError::NoSuchMethod(m) => write!(f, "no such method `{m}`"),
            MutateError::BadSite(d) => write!(f, "bad mutation site: {d}"),
        }
    }
}

impl std::error::Error for MutateError {}

/// Enumerate every applicable mutation of `component`, in a deterministic
/// order (methods in declaration order, statement paths in pre-order).
pub fn enumerate_mutations(component: &Component) -> Vec<Mutation> {
    let mut out = Vec::new();
    for method in &component.methods {
        // Method-level operators.
        if method.synchronized {
            out.push(Mutation {
                kind: MutationKind::DropSynchronized,
                method: method.name.clone(),
                path: None,
            });
            out.push(Mutation {
                kind: MutationKind::AddRedundantSync,
                method: method.name.clone(),
                path: None,
            });
            out.push(Mutation {
                kind: MutationKind::SpuriousWait,
                method: method.name.clone(),
                path: None,
            });
            out.push(Mutation {
                kind: MutationKind::HoldLockForever,
                method: method.name.clone(),
                path: None,
            });
            // EarlyReturn needs a top-level notify to return before.
            if method
                .body
                .iter()
                .any(|s| matches!(s, Stmt::Notify { .. } | Stmt::NotifyAll { .. }))
            {
                out.push(Mutation {
                    kind: MutationKind::EarlyReturn,
                    method: method.name.clone(),
                    path: None,
                });
            }
        }
        // Statement-level operators.
        walk_paths(&method.body, &mut Vec::new(), &mut |stmt, path| {
            match stmt {
                Stmt::Wait { .. } => out.push(Mutation {
                    kind: MutationKind::SkipWait,
                    method: method.name.clone(),
                    path: Some(StmtPath(path.to_vec())),
                }),
                Stmt::While { body, .. } => {
                    let has_wait = body.iter().any(|s| matches!(s, Stmt::Wait { .. }));
                    if has_wait {
                        out.push(Mutation {
                            kind: MutationKind::WaitIfInsteadOfWhile,
                            method: method.name.clone(),
                            path: Some(StmtPath(path.to_vec())),
                        });
                        out.push(Mutation {
                            kind: MutationKind::NegateWaitCondition,
                            method: method.name.clone(),
                            path: Some(StmtPath(path.to_vec())),
                        });
                    }
                }
                Stmt::NotifyAll { .. } => {
                    out.push(Mutation {
                        kind: MutationKind::NotifyInsteadOfNotifyAll,
                        method: method.name.clone(),
                        path: Some(StmtPath(path.to_vec())),
                    });
                    out.push(Mutation {
                        kind: MutationKind::DropNotify,
                        method: method.name.clone(),
                        path: Some(StmtPath(path.to_vec())),
                    });
                }
                Stmt::Notify { .. } => out.push(Mutation {
                    kind: MutationKind::DropNotify,
                    method: method.name.clone(),
                    path: Some(StmtPath(path.to_vec())),
                }),
                _ => {}
            }
        });
    }
    out
}

/// Pre-order walk carrying the statement path (then-branch only for `If`,
/// matching [`stmt_at`]'s plain-index steps; else branches use the
/// `ELSE_OFFSET` convention).
fn walk_paths(block: &Block, path: &mut Vec<usize>, f: &mut impl FnMut(&Stmt, &[usize])) {
    for (i, stmt) in block.iter().enumerate() {
        path.push(i);
        walk_one(stmt, path, f);
        path.pop();
    }
}

fn walk_one(stmt: &Stmt, path: &mut Vec<usize>, f: &mut impl FnMut(&Stmt, &[usize])) {
    f(stmt, path);
    match stmt {
        Stmt::While { body, .. } | Stmt::Synchronized { body, .. } => walk_paths(body, path, f),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            walk_paths(then_branch, path, f);
            // Else steps use the offset convention of `StmtPath`.
            for (j, s) in else_branch.iter().enumerate() {
                path.push(crate::ast::ELSE_OFFSET + j);
                walk_one(s, path, f);
                path.pop();
            }
        }
        _ => {}
    }
}

/// Apply `mutation` to a copy of `component`.
pub fn apply_mutation(component: &Component, mutation: &Mutation) -> Result<Component, MutateError> {
    let mut mutated = component.clone();
    let method = mutated
        .methods
        .iter_mut()
        .find(|m| m.name == mutation.method)
        .ok_or_else(|| MutateError::NoSuchMethod(mutation.method.clone()))?;

    match mutation.kind {
        MutationKind::DropSynchronized => {
            if !method.synchronized {
                return Err(MutateError::BadSite("method not synchronized".into()));
            }
            method.synchronized = false;
        }
        MutationKind::AddRedundantSync => {
            let body = std::mem::take(&mut method.body);
            method.body = vec![Stmt::Synchronized {
                lock: LockRef::This,
                body,
            }];
        }
        MutationKind::SpuriousWait => {
            method.body.insert(0, Stmt::Wait { lock: LockRef::This });
        }
        MutationKind::HoldLockForever => {
            method.body.insert(
                0,
                Stmt::While {
                    cond: Expr::Bool(true),
                    body: vec![Stmt::Skip],
                },
            );
        }
        MutationKind::EarlyReturn => {
            let notify_pos = method
                .body
                .iter()
                .position(|s| matches!(s, Stmt::Notify { .. } | Stmt::NotifyAll { .. }))
                .ok_or_else(|| MutateError::BadSite("no top-level notify".into()))?;
            let ret = match method.ret {
                None => Stmt::Return(None),
                Some(Type::Int) => Stmt::Return(Some(Expr::Int(0))),
                Some(Type::Bool) => Stmt::Return(Some(Expr::Bool(false))),
                Some(Type::Str) => Stmt::Return(Some(Expr::Str(String::new()))),
            };
            method.body.insert(notify_pos, ret);
        }
        MutationKind::SkipWait => {
            let path = require_path(mutation)?;
            let stmt = stmt_at_mut(&mut method.body, path)
                .ok_or_else(|| MutateError::BadSite("path does not resolve".into()))?;
            if !matches!(stmt, Stmt::Wait { .. }) {
                return Err(MutateError::BadSite("expected a wait".into()));
            }
            *stmt = Stmt::Skip;
        }
        MutationKind::WaitIfInsteadOfWhile => {
            let path = require_path(mutation)?;
            let stmt = stmt_at_mut(&mut method.body, path)
                .ok_or_else(|| MutateError::BadSite("path does not resolve".into()))?;
            match stmt {
                Stmt::While { cond, body } => {
                    *stmt = Stmt::If {
                        cond: cond.clone(),
                        then_branch: body.clone(),
                        else_branch: Vec::new(),
                    };
                }
                _ => return Err(MutateError::BadSite("expected a while".into())),
            }
        }
        MutationKind::NegateWaitCondition => {
            let path = require_path(mutation)?;
            let stmt = stmt_at_mut(&mut method.body, path)
                .ok_or_else(|| MutateError::BadSite("path does not resolve".into()))?;
            match stmt {
                Stmt::While { cond, .. } => {
                    let old = cond.clone();
                    *cond = Expr::Unary(crate::ast::UnOp::Not, Box::new(old));
                }
                _ => return Err(MutateError::BadSite("expected a while".into())),
            }
        }
        MutationKind::NotifyInsteadOfNotifyAll => {
            let path = require_path(mutation)?;
            let stmt = stmt_at_mut(&mut method.body, path)
                .ok_or_else(|| MutateError::BadSite("path does not resolve".into()))?;
            match stmt {
                Stmt::NotifyAll { lock } => {
                    *stmt = Stmt::Notify { lock: lock.clone() };
                }
                _ => return Err(MutateError::BadSite("expected a notifyAll".into())),
            }
        }
        MutationKind::DropNotify => {
            let path = require_path(mutation)?;
            match stmt_at(&method.body, path) {
                Some(Stmt::Notify { .. }) | Some(Stmt::NotifyAll { .. }) => {}
                _ => return Err(MutateError::BadSite("expected a notify".into())),
            }
            remove_stmt_at(&mut method.body, path)
                .ok_or_else(|| MutateError::BadSite("path does not resolve".into()))?;
        }
    }
    Ok(mutated)
}

fn require_path(mutation: &Mutation) -> Result<&StmtPath, MutateError> {
    mutation
        .path
        .as_ref()
        .ok_or_else(|| MutateError::BadSite("operator requires a statement path".into()))
}

/// Generate every mutant of `component` with its mutation descriptor.
pub fn all_mutants(component: &Component) -> Vec<(Mutation, Component)> {
    enumerate_mutations(component)
        .into_iter()
        .map(|m| {
            let mutant = apply_mutation(component, &m)
                .expect("enumerated mutations are applicable");
            (m, mutant)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use crate::validate::validate;

    #[test]
    fn enumerate_producer_consumer() {
        let c = examples::producer_consumer();
        let muts = enumerate_mutations(&c);
        // Per method (receive, send): 5 method-level (incl. EarlyReturn since
        // both have top-level notifyAll) + SkipWait + While(2 ops) + NotifyAll(2 ops)
        // = 5 + 1 + 2 + 2 = 10 → 20 total.
        assert_eq!(muts.len(), 20);
        // Deterministic order.
        let again = enumerate_mutations(&c);
        assert_eq!(muts, again);
    }

    #[test]
    fn all_mutants_apply_and_stay_valid() {
        for (name, c) in examples::corpus() {
            for (m, mutant) in all_mutants(&c) {
                let errs = validate(&mutant);
                // DropSynchronized makes wait/notify statically illegal —
                // exactly Java's IllegalMonitorStateException exposure. All
                // other mutants must stay statically valid.
                if m.kind == MutationKind::DropSynchronized {
                    continue;
                }
                assert!(
                    errs.is_empty(),
                    "{name} mutant {} invalid: {errs:?}",
                    m.label()
                );
            }
        }
    }

    #[test]
    fn skip_wait_replaces_wait() {
        let c = examples::producer_consumer();
        let m = enumerate_mutations(&c)
            .into_iter()
            .find(|m| m.kind == MutationKind::SkipWait && m.method == "receive")
            .unwrap();
        let mutant = apply_mutation(&c, &m).unwrap();
        let receive = mutant.method("receive").unwrap();
        let mut wait_count = 0;
        crate::ast::visit_stmts(&receive.body, &mut |s| {
            if matches!(s, Stmt::Wait { .. }) {
                wait_count += 1;
            }
        });
        assert_eq!(wait_count, 0);
    }

    #[test]
    fn wait_if_instead_of_while() {
        let c = examples::producer_consumer();
        let m = enumerate_mutations(&c)
            .into_iter()
            .find(|m| m.kind == MutationKind::WaitIfInsteadOfWhile && m.method == "send")
            .unwrap();
        let mutant = apply_mutation(&c, &m).unwrap();
        let send = mutant.method("send").unwrap();
        assert!(matches!(send.body[0], Stmt::If { .. }));
    }

    #[test]
    fn early_return_lands_before_notify() {
        let c = examples::producer_consumer();
        let m = enumerate_mutations(&c)
            .into_iter()
            .find(|m| m.kind == MutationKind::EarlyReturn && m.method == "receive")
            .unwrap();
        let mutant = apply_mutation(&c, &m).unwrap();
        let body = &mutant.method("receive").unwrap().body;
        let ret_pos = body
            .iter()
            .position(|s| matches!(s, Stmt::Return(_)))
            .unwrap();
        let notify_pos = body
            .iter()
            .position(|s| matches!(s, Stmt::NotifyAll { .. }))
            .unwrap();
        assert!(ret_pos < notify_pos);
    }

    #[test]
    fn drop_notify_removes_statement() {
        let c = examples::bounded_buffer();
        let m = enumerate_mutations(&c)
            .into_iter()
            .find(|m| m.kind == MutationKind::DropNotify && m.method == "put")
            .unwrap();
        let before = crate::ast::count_stmts(&c.method("put").unwrap().body);
        let mutant = apply_mutation(&c, &m).unwrap();
        let after = crate::ast::count_stmts(&mutant.method("put").unwrap().body);
        assert_eq!(after, before - 1);
    }

    #[test]
    fn negate_wait_condition_wraps_not() {
        let c = examples::bounded_buffer();
        let m = enumerate_mutations(&c)
            .into_iter()
            .find(|m| m.kind == MutationKind::NegateWaitCondition && m.method == "take")
            .unwrap();
        let mutant = apply_mutation(&c, &m).unwrap();
        match &mutant.method("take").unwrap().body[0] {
            Stmt::While { cond, .. } => {
                assert!(matches!(cond, Expr::Unary(crate::ast::UnOp::Not, _)));
            }
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn seeded_classes_cover_eight_distinct_classes() {
        use std::collections::HashSet;
        let classes: HashSet<_> = MutationKind::ALL
            .iter()
            .map(|k| k.seeded_class().code())
            .collect();
        // FF-T1, EF-T1, FF-T3, EF-T3, FF-T4, EF-T4, FF-T5, EF-T5 — FF-T2 is
        // induced indirectly (by HoldLockForever victims) and EF-T2 is the
        // JVM-correctness row the paper excludes.
        assert_eq!(classes.len(), 8);
        assert!(!classes.contains("FF-T2"));
        assert!(!classes.contains("EF-T2"));
    }

    #[test]
    fn mutant_labels_are_unique() {
        use std::collections::HashSet;
        let c = examples::readers_writers();
        let labels: HashSet<_> = enumerate_mutations(&c)
            .iter()
            .map(Mutation::label)
            .collect();
        assert_eq!(labels.len(), enumerate_mutations(&c).len());
    }

    #[test]
    fn bad_sites_error() {
        let c = examples::producer_consumer();
        let bad = Mutation {
            kind: MutationKind::SkipWait,
            method: "receive".into(),
            path: Some(StmtPath(vec![99])),
        };
        assert!(apply_mutation(&c, &bad).is_err());
        let bad = Mutation {
            kind: MutationKind::SkipWait,
            method: "ghost".into(),
            path: Some(StmtPath(vec![0])),
        };
        assert!(matches!(
            apply_mutation(&c, &bad),
            Err(MutateError::NoSuchMethod(_))
        ));
    }

    #[test]
    fn redundant_sync_wraps_body() {
        let c = examples::semaphore();
        let m = Mutation {
            kind: MutationKind::AddRedundantSync,
            method: "release".into(),
            path: None,
        };
        let mutant = apply_mutation(&c, &m).unwrap();
        let body = &mutant.method("release").unwrap().body;
        assert_eq!(body.len(), 1);
        assert!(matches!(body[0], Stmt::Synchronized { .. }));
        assert!(validate(&mutant).is_empty());
    }
}
