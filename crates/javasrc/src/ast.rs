//! The span-carrying Java AST the parser produces.
//!
//! This is deliberately a *surface* AST: it records what the file says
//! (`this.count`, `lock.wait()`, `synchronized (this) { ... }`) without
//! resolving names or monitors — that is the lowering pass's job, so
//! lowering errors can point at precise source spans.

use crate::span::Span;

/// A parsed compilation unit: one `.java` file.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilationUnit {
    /// The classes declared in the file (usually exactly one).
    pub classes: Vec<ClassDecl>,
}

/// A class declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Span of the name identifier.
    pub name_span: Span,
    /// Span of the whole declaration (`class` keyword to closing brace).
    pub span: Span,
    /// Field declarations in source order.
    pub fields: Vec<FieldDecl>,
    /// Method declarations in source order.
    pub methods: Vec<MethodDecl>,
}

/// A surface type name.
#[derive(Debug, Clone, PartialEq)]
pub enum JType {
    /// `int` or `long`.
    Int,
    /// `boolean`.
    Bool,
    /// `String`.
    Str,
    /// `Object` — only legal as a lock field's type.
    Object,
    /// `void` (method returns only).
    Void,
    /// Any other class name, carried for the error message.
    Other(String),
}

impl JType {
    /// Java surface syntax of the type.
    pub fn render(&self) -> String {
        match self {
            JType::Int => "int".into(),
            JType::Bool => "boolean".into(),
            JType::Str => "String".into(),
            JType::Object => "Object".into(),
            JType::Void => "void".into(),
            JType::Other(n) => n.clone(),
        }
    }
}

/// A field declaration, e.g. `private int count = 0;` or
/// `private final Object lock = new Object();`.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Span of the name identifier.
    pub name_span: Span,
    /// Span of the whole declaration.
    pub span: Span,
    /// Declared type.
    pub ty: JType,
    /// `= new Object()` marks a lock declaration.
    pub is_lock: bool,
    /// Initializer expression (absent for lock fields and bare decls).
    pub init: Option<JExpr>,
}

/// A method declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// Method name.
    pub name: String,
    /// Span of the name identifier.
    pub name_span: Span,
    /// Span of the whole declaration.
    pub span: Span,
    /// `synchronized` modifier present.
    pub synchronized: bool,
    /// Return type.
    pub ret: JType,
    /// Parameters in order.
    pub params: Vec<ParamDecl>,
    /// Body statements.
    pub body: Vec<JStmt>,
}

/// A method parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: JType,
    /// Span of the declaration.
    pub span: Span,
}

/// The receiver of a monitor operation or `synchronized` block:
/// `this`, a bare identifier, or `this.ident`.
#[derive(Debug, Clone, PartialEq)]
pub enum Receiver {
    /// `this` (explicit or implicit).
    This,
    /// A named object, e.g. the `lock` in `lock.wait()`.
    Name(String),
}

/// A surface statement with its span.
#[derive(Debug, Clone, PartialEq)]
pub struct JStmt {
    /// Statement kind.
    pub kind: JStmtKind,
    /// Span of the whole statement.
    pub span: Span,
}

/// Surface statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum JStmtKind {
    /// `while (cond) body`
    While {
        /// Loop condition.
        cond: JExpr,
        /// Loop body (a block or a single statement).
        body: Vec<JStmt>,
    },
    /// `if (cond) body [else body]`
    If {
        /// Branch condition.
        cond: JExpr,
        /// Then branch.
        then_branch: Vec<JStmt>,
        /// Else branch (empty when absent).
        else_branch: Vec<JStmt>,
    },
    /// `synchronized (recv) { body }`
    Synchronized {
        /// The locked object.
        recv: Receiver,
        /// Span of the receiver expression.
        recv_span: Span,
        /// Statements under the lock.
        body: Vec<JStmt>,
    },
    /// `recv.wait();` (or bare `wait();`)
    Wait {
        /// The monitor waited on.
        recv: Receiver,
    },
    /// `recv.notify();`
    Notify {
        /// The monitor notified.
        recv: Receiver,
    },
    /// `recv.notifyAll();`
    NotifyAll {
        /// The monitor notified.
        recv: Receiver,
    },
    /// `target = value;` — target is an identifier or `this.ident`.
    Assign {
        /// Assignment target name.
        target: String,
        /// `this.` prefix present, forcing field resolution.
        explicit_this: bool,
        /// Span of the target.
        target_span: Span,
        /// Right-hand side.
        value: JExpr,
    },
    /// Local declaration: `int x = e;`
    Local {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: JType,
        /// Span of the name.
        name_span: Span,
        /// Initializer.
        init: JExpr,
    },
    /// `return;` / `return e;`
    Return(Option<JExpr>),
    /// An expression statement: a call we do not model (`System.out.println`)
    /// or a no-op; lowers to `Stmt::Skip`.
    ExprStmt(JExpr),
    /// An empty statement `;`.
    Empty,
}

/// A surface expression with its span.
#[derive(Debug, Clone, PartialEq)]
pub struct JExpr {
    /// Expression kind.
    pub kind: JExprKind,
    /// Span of the expression.
    pub span: Span,
}

/// Surface expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum JExprKind {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// A bare identifier (local, parameter, or field — resolved in lowering).
    Ident(String),
    /// `this.name` — forced field access.
    FieldAccess(String),
    /// Unary operator.
    Unary(UnOpKind, Box<JExpr>),
    /// Binary operator.
    Binary(BinOpKind, Box<JExpr>, Box<JExpr>),
    /// A method call `recv.name(args)` / `name(args)`. Builtins
    /// (`length`, `charAt`, `concat`, `toString`) lower to IR calls;
    /// anything else is unmodeled.
    Call {
        /// Receiver expression, when present.
        recv: Option<Box<JExpr>>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<JExpr>,
    },
}

/// Surface unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOpKind {
    /// `-e`
    Neg,
    /// `!e`
    Not,
}

/// Surface binary operators (maps 1:1 onto [`jcc_model::ast::BinOp`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOpKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}
