//! # jcc-javasrc — a real-Java-subset frontend for the Monitor IR
//!
//! The rest of the workspace writes components in the jcc DSL; this crate
//! accepts actual `.java` source for the same class shape the paper
//! studies — classes with fields, `synchronized` methods and
//! `synchronized (expr)` blocks, `wait()` / `notify()` / `notifyAll()`,
//! `if`/`while`/assignment — and lowers it onto [`jcc_model::ast`]
//! unchanged, so every existing analysis runs on Java input for free.
//!
//! The pipeline, one module per stage:
//!
//! * [`span`] — byte spans and the [`span::SourceMap`] (offset → line:col),
//! * [`lexer`] — span-carrying tokens with lex-error recovery,
//! * [`parser`] — recursive descent with panic-mode recovery (sync on
//!   `;` / `}`): a syntax error never hides the rest of the file,
//! * [`lower`] — Java AST → Monitor IR, plus the [`lower::LowerMap`]
//!   carrying MIR method/statement ids back to source spans,
//! * [`render`] — rustc-style `error[EF-T3]: ...` diagnostics with
//!   caret-underlined snippets,
//! * [`check`] — the `jcc check` driver with the 0/1/2 exit contract
//!   (clean / findings at threshold / frontend error).
//!
//! ```
//! use jcc_javasrc::check::{check_files, CheckOptions};
//! let src = "class C { int n = 0; public synchronized void inc() { n++; } }";
//! let out = check_files(&[("C.java".into(), src.into())], &CheckOptions::default());
//! assert_eq!(out.exit_code(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod check;
pub mod diag;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod render;
pub mod span;

pub use check::{check_files, check_paths, check_source, CheckOptions, CheckOutcome, Format};
pub use diag::{FrontDiag, Phase};
pub use lower::{lower_class, LowerMap, Lowered};
pub use parser::parse;
pub use span::{SourceMap, Span};
