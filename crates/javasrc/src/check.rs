//! The `jcc check` driver: parse → lower → validate → analyze → render.
//!
//! Shared by the `jcc` CLI binary, the E13 benchmark and the integration
//! tests, so all three see identical behavior. The exit-code contract:
//!
//! * **0** — every file parsed, lowered, and produced no analyzer finding
//!   at or above the `--deny` threshold (default: `high`),
//! * **1** — the frontend understood everything but at least one finding
//!   reached the threshold,
//! * **2** — at least one file did not fully parse or lower (syntax
//!   error, unsupported construct, unresolved name, type error).
//!
//! Output is deterministic: files are processed in the caller-supplied
//! order (the CLI sorts paths), per-file diagnostics are ordered frontend
//! errors first (by span), then analyzer findings in the analyzer's
//! `(file, span, check)` order.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use jcc_analyze::{AnalysisReport, Severity, SrcLoc};
use jcc_model::validate::{validate, ValidationError};
use jcc_obs::json::Json;

use crate::diag::{FrontDiag, Phase};
use crate::lower::{lower_class, LowerMap};
use crate::parser::parse;
use crate::render::{render_analyzer_diag, render_front_diag};
use crate::span::{SourceMap, Span};

/// Output format for [`check_source`] / [`check_files`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Rustc-style human-readable text.
    #[default]
    Text,
    /// JSON lines: one extended `jcc-analyze/v1` document per class,
    /// plus one `jcc-javasrc/v1` record per frontend error.
    Json,
}

/// Options for a check run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Findings at or above this severity drive exit code 1.
    pub deny: Severity,
    /// Output format.
    pub format: Format,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions {
            deny: Severity::High,
            format: Format::Text,
        }
    }
}

/// The result of checking one file.
#[derive(Debug, Clone)]
pub struct FileOutcome {
    /// Display name (path) of the file.
    pub file: String,
    /// Rendered output (text or JSON lines, per the options).
    pub output: String,
    /// Frontend errors (parse + lower + fatal validation).
    pub front_errors: usize,
    /// Analyzer findings at or above the deny threshold.
    pub denied_findings: usize,
    /// All analyzer reports, one per class, with sources attached.
    pub reports: Vec<AnalysisReport>,
    /// Lines of code (non-blank, non-comment) — the E13 denominator.
    pub loc: usize,
}

/// The result of a whole check run.
#[derive(Debug, Clone, Default)]
pub struct CheckOutcome {
    /// Per-file outcomes, in input order.
    pub files: Vec<FileOutcome>,
    /// Concatenated output of every file.
    pub output: String,
    /// Total frontend errors.
    pub front_errors: usize,
    /// Total findings at or above the deny threshold.
    pub denied_findings: usize,
    /// Total lines of code checked.
    pub loc: usize,
}

impl CheckOutcome {
    /// The process exit code under the contract above.
    pub fn exit_code(&self) -> i32 {
        if self.front_errors > 0 {
            2
        } else if self.denied_findings > 0 {
            1
        } else {
            0
        }
    }
}

/// Check one in-memory source file.
pub fn check_source(file: &str, src: &str, opts: &CheckOptions) -> FileOutcome {
    let sm = SourceMap::new(file, src);
    let (unit, mut front) = parse(src);

    let mut reports = Vec::new();
    for class in &unit.classes {
        let mut lowered = lower_class(class);
        front.append(&mut lowered.diags);
        front.extend(fatal_validation_errors(&lowered));

        let mut report = jcc_analyze::analyze(&lowered.component);
        let map = &lowered.map;
        report.attach_sources(|d| {
            let span = map.resolve(&d.method, d.path.as_ref().map(|p| p.0.as_slice()));
            let (line, col) = sm.line_col(span.lo);
            Some(SrcLoc {
                file: file.to_string(),
                line,
                col,
                span: (span.lo, span.hi),
            })
        });
        reports.push(report);
    }

    front.sort_by_key(|d| (d.span, d.phase, d.message.clone()));

    let mut out = String::new();
    match opts.format {
        Format::Text => {
            for d in &front {
                out.push_str(&render_front_diag(&sm, d));
            }
            for r in &reports {
                for d in &r.diagnostics {
                    out.push_str(&render_analyzer_diag(&sm, d));
                }
            }
        }
        Format::Json => {
            for d in &front {
                let (line, col) = sm.line_col(d.span.lo);
                let doc = Json::obj([
                    ("schema".to_string(), Json::Str("jcc-javasrc/v1".to_string())),
                    ("phase".to_string(), Json::Str(d.phase.name().to_string())),
                    ("file".to_string(), Json::Str(file.to_string())),
                    ("line".to_string(), Json::Num(line as f64)),
                    ("col".to_string(), Json::Num(col as f64)),
                    (
                        "span".to_string(),
                        Json::Arr(vec![
                            Json::Num(d.span.lo as f64),
                            Json::Num(d.span.hi as f64),
                        ]),
                    ),
                    ("message".to_string(), Json::Str(d.message.clone())),
                ]);
                out.push_str(&doc.to_string_compact());
                out.push('\n');
            }
            for r in &reports {
                out.push_str(&r.to_json().to_string_compact());
                out.push('\n');
            }
        }
    }

    let denied = reports
        .iter()
        .map(|r| r.at_least(opts.deny).count())
        .sum();
    FileOutcome {
        file: file.to_string(),
        output: out,
        front_errors: front.len(),
        denied_findings: denied,
        reports,
        loc: sm.loc(),
    }
}

/// Validation errors the analyzer does not already cover become frontend
/// errors. `MonitorNotHeld` is the exception: the analyzer reports it as
/// a proper High finding with a source span, so the validator's copy is
/// dropped rather than double-reported as a fatal error.
fn fatal_validation_errors(lowered: &crate::lower::Lowered) -> Vec<FrontDiag> {
    validate(&lowered.component)
        .into_iter()
        .filter(|e| !matches!(e, ValidationError::MonitorNotHeld { .. }))
        .map(|e| {
            let method = match &e {
                ValidationError::UnknownName { method, .. }
                | ValidationError::UnknownLock { method, .. }
                | ValidationError::TypeMismatch { method, .. }
                | ValidationError::ArityMismatch { method, .. }
                | ValidationError::ReturnMismatch { method, .. } => Some(method.as_str()),
                _ => None,
            };
            let span = anchor_span(&lowered.map, method);
            FrontDiag::new(Phase::Lower, span, e.to_string())
        })
        .collect()
}

fn anchor_span(map: &LowerMap, method: Option<&str>) -> Span {
    match method {
        Some(m) => map.resolve(m, None),
        None => map.class_span,
    }
}

/// Check several files given as `(name, source)` pairs.
pub fn check_files(inputs: &[(String, String)], opts: &CheckOptions) -> CheckOutcome {
    let mut outcome = CheckOutcome::default();
    for (file, src) in inputs {
        let f = check_source(file, src, opts);
        outcome.output.push_str(&f.output);
        outcome.front_errors += f.front_errors;
        outcome.denied_findings += f.denied_findings;
        outcome.loc += f.loc;
        outcome.files.push(f);
    }
    outcome
}

/// Expand paths: a `.java` file stands for itself, a directory for every
/// `.java` file under it (recursively), sorted for determinism.
pub fn collect_java_files(paths: &[PathBuf]) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            walk(p, &mut files)?;
        } else {
            files.push(p.clone());
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "java") {
            out.push(path);
        }
    }
    Ok(())
}

/// Read and check files from disk (the CLI and bench entry point).
pub fn check_paths(paths: &[PathBuf], opts: &CheckOptions) -> io::Result<CheckOutcome> {
    let files = collect_java_files(paths)?;
    let mut inputs = Vec::new();
    for f in files {
        let src = fs::read_to_string(&f)?;
        inputs.push((f.display().to_string(), src));
    }
    Ok(check_files(&inputs, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = "class Cell {\n  private boolean ready = false;\n\
         \n  public synchronized void put() {\n    ready = true;\n    notifyAll();\n  }\n\
         \n  public synchronized void take() {\n    while (!ready) {\n      wait();\n    }\n    ready = false;\n  }\n}\n";

    const BUGGY: &str = "class Buggy {\n  private boolean ready = false;\n\
         \n  public synchronized void take() {\n    wait();\n    ready = false;\n  }\n}\n";

    #[test]
    fn clean_file_exits_zero() {
        let o = check_files(&[("Cell.java".into(), CLEAN.into())], &CheckOptions::default());
        assert_eq!(o.front_errors, 0, "{}", o.output);
        assert_eq!(o.exit_code(), 0, "{}", o.output);
        assert!(o.loc > 0);
    }

    #[test]
    fn unconditional_wait_is_denied_with_a_span() {
        let o = check_files(
            &[("Buggy.java".into(), BUGGY.into())],
            &CheckOptions::default(),
        );
        assert_eq!(o.exit_code(), 1, "{}", o.output);
        assert!(o.output.contains("error[EF-T3]"), "{}", o.output);
        assert!(o.output.contains("Buggy.java:5:5"), "{}", o.output);
        assert!(o.output.contains("wait();"), "{}", o.output);
    }

    #[test]
    fn parse_error_exits_two_but_still_analyzes_the_rest() {
        let src = "class P {\n  int n = ;\n  public synchronized void m() {\n    n = 1;\n  }\n}\n";
        let o = check_files(&[("P.java".into(), src.into())], &CheckOptions::default());
        assert_eq!(o.exit_code(), 2, "{}", o.output);
        assert!(o.output.contains("error[parse]"), "{}", o.output);
        // The method after the bad field still lowered and analyzed.
        assert_eq!(o.files[0].reports.len(), 1);
    }

    #[test]
    fn json_format_emits_extended_records() {
        let opts = CheckOptions {
            format: Format::Json,
            ..CheckOptions::default()
        };
        let o = check_files(&[("Buggy.java".into(), BUGGY.into())], &opts);
        let first = o.output.lines().next().unwrap();
        let doc = Json::parse(first).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("jcc-analyze/v1"));
        let d = &doc.get("diagnostics").unwrap().as_arr().unwrap()[0];
        assert_eq!(d.get("file").unwrap().as_str(), Some("Buggy.java"));
        assert!(d.get("line").unwrap().as_u64().is_some());
        assert!(d.get("span").unwrap().as_arr().is_some());
    }

    #[test]
    fn output_is_byte_identical_across_runs() {
        for format in [Format::Text, Format::Json] {
            let opts = CheckOptions {
                format,
                ..CheckOptions::default()
            };
            let inputs = [
                ("Cell.java".to_string(), CLEAN.to_string()),
                ("Buggy.java".to_string(), BUGGY.to_string()),
            ];
            let a = check_files(&inputs, &opts);
            let b = check_files(&inputs, &opts);
            assert_eq!(a.output, b.output);
        }
    }

    #[test]
    fn deny_threshold_controls_exit_code() {
        // CLEAN has no High findings; Medium findings (if any) only count
        // when the threshold is lowered.
        let medium = CheckOptions {
            deny: Severity::Medium,
            ..CheckOptions::default()
        };
        let o_high = check_files(&[("C.java".into(), CLEAN.into())], &CheckOptions::default());
        let o_med = check_files(&[("C.java".into(), CLEAN.into())], &medium);
        assert_eq!(o_high.exit_code(), 0);
        assert!(o_med.denied_findings >= o_high.denied_findings);
    }
}
