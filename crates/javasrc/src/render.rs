//! Rustc-style rendering of diagnostics against the original source.
//!
//! Both analyzer findings (with an attached [`SrcLoc`]) and frontend
//! errors render in the same shape:
//!
//! ```text
//! error[FF-T5]: `wait` on `this` but no method ever notifies it
//!   --> tests/java_corpus/buggy/MissingNotify.java:9:13
//!    |
//!  9 |             wait();
//!    |             ^^^^^^^
//!    |
//!    = note: no-notifier-for-wait (severity high) in method `take`
//! ```
//!
//! The severity → label mapping is fixed (`high` → `error`, `medium` →
//! `warning`, `low` → `note`) so rendered output is independent of the
//! `--deny` threshold and byte-identical across runs.

use std::fmt::Write as _;

use jcc_analyze::{Diagnostic, Severity};

use crate::diag::FrontDiag;
use crate::span::{SourceMap, Span};

/// The rustc-style label for a severity tier.
pub fn severity_label(sev: Severity) -> &'static str {
    match sev {
        Severity::High => "error",
        Severity::Medium => "warning",
        Severity::Low => "note",
    }
}

/// Append the `--> file:line:col` arrow plus the gutter-framed source
/// line with a caret underline for `span`.
fn snippet_block(out: &mut String, sm: &SourceMap, span: Span) {
    let (line, col) = sm.line_col(span.lo);
    let _ = writeln!(out, "  --> {}:{}:{}", sm.name(), line, col);
    let text = sm.line_text(line);
    let gutter = line.to_string().len().max(2);
    let _ = writeln!(out, "{:gutter$} |", "");
    let _ = writeln!(out, "{line:gutter$} | {text}");
    // Underline from the start column to the span end, clamped to this
    // line (multi-line spans underline their first line only).
    let line_len = text.len() as u32;
    let start = col - 1;
    let width = span.len().clamp(1, line_len.saturating_sub(start).max(1));
    let _ = writeln!(
        out,
        "{:gutter$} | {:start$}{}",
        "",
        "",
        "^".repeat(width as usize),
        start = start as usize,
    );
    let _ = writeln!(out, "{:gutter$} |", "");
}

/// Render one analyzer finding. The caller guarantees `d.src` is the
/// location inside `sm` (attached via `AnalysisReport::attach_sources`);
/// without one the note-only form is used.
pub fn render_analyzer_diag(sm: &SourceMap, d: &Diagnostic) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}[{}]: {}",
        severity_label(d.severity),
        d.class.code(),
        d.message
    );
    if let Some(src) = &d.src {
        snippet_block(&mut out, sm, Span { lo: src.span.0, hi: src.span.1 });
    }
    let _ = writeln!(
        out,
        "   = note: {} (severity {}) in method `{}`",
        d.check,
        d.severity,
        d.method
    );
    out
}

/// Render one frontend (parse/lower) error.
pub fn render_front_diag(sm: &SourceMap, d: &FrontDiag) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "error[{}]: {}", d.phase.name(), d.message);
    snippet_block(&mut out, sm, d.span);
    if let Some(help) = &d.help {
        let _ = writeln!(out, "   = help: {help}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Phase;
    use jcc_analyze::{CheckId, SrcLoc};
    use jcc_model::ast::StmtPath;
    use jcc_petri::{Deviation, Transition};

    fn sample_map() -> SourceMap {
        SourceMap::new(
            "T.java",
            "class T {\n  void m() {\n    wait();\n  }\n}\n",
        )
    }

    #[test]
    fn front_diag_renders_arrow_and_caret() {
        let sm = sample_map();
        // Span of `wait();` — bytes 27..34 in the sample.
        let span = Span::new(27, 34);
        assert_eq!(sm.snippet(span), "wait();");
        let d = FrontDiag::new(Phase::Parse, span, "boom").with_help("fix it");
        let text = render_front_diag(&sm, &d);
        assert!(text.starts_with("error[parse]: boom\n"), "{text}");
        assert!(text.contains("--> T.java:3:5"), "{text}");
        assert!(text.contains("3 |     wait();"), "{text}");
        assert!(text.contains("^^^^^^^"), "{text}");
        assert!(text.contains("= help: fix it"), "{text}");
    }

    #[test]
    fn analyzer_diag_renders_class_code_and_note() {
        let sm = sample_map();
        let d = Diagnostic {
            check: CheckId::MonitorNotHeld,
            class: jcc_petri::FailureClass::new(Deviation::FailureToFire, Transition::T1),
            severity: Severity::High,
            method: "m".into(),
            path: Some(StmtPath(vec![0])),
            src: Some(SrcLoc {
                file: "T.java".into(),
                line: 3,
                col: 5,
                span: (27, 34),
            }),
            message: "wait outside monitor".into(),
        };
        let text = render_analyzer_diag(&sm, &d);
        assert!(text.starts_with("error[FF-T1]: wait outside monitor\n"), "{text}");
        assert!(text.contains("--> T.java:3:5"), "{text}");
        assert!(
            text.contains("= note: monitor-not-held (severity high) in method `m`"),
            "{text}"
        );
    }

    #[test]
    fn severity_labels_are_fixed() {
        assert_eq!(severity_label(Severity::High), "error");
        assert_eq!(severity_label(Severity::Medium), "warning");
        assert_eq!(severity_label(Severity::Low), "note");
    }
}
