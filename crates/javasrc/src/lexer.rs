//! Lexer for the Java subset. Every token carries its byte [`Span`]; lex
//! errors become recoverable [`FrontDiag`]s (skip the offending character,
//! keep tokenizing) so one stray byte cannot hide the rest of the file.

use std::fmt;

use crate::diag::{FrontDiag, Phase};
use crate::span::Span;

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: Tok,
    /// Byte range in the source.
    pub span: Span,
}

/// Token kinds of the Java subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Keywords.
    /// `package`
    Package,
    /// `import`
    Import,
    /// `public`
    Public,
    /// `private`
    Private,
    /// `protected`
    Protected,
    /// `static`
    Static,
    /// `final`
    Final,
    /// `volatile`
    Volatile,
    /// `abstract`
    Abstract,
    /// `class`
    Class,
    /// `extends`
    Extends,
    /// `implements`
    Implements,
    /// `synchronized`
    Synchronized,
    /// `void`
    Void,
    /// `int`
    Int,
    /// `long`
    Long,
    /// `boolean`
    Boolean,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `new`
    New,
    /// `this`
    This,
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
    /// `throws`
    Throws,

    // Literals and identifiers.
    /// Decimal integer literal.
    IntLit(i64),
    /// String literal (unescaped contents).
    StrLit(String),
    /// Identifier (including class names like `String`, `Object`).
    Ident(String),

    // Punctuation.
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,

    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Tok::*;
        match self {
            IntLit(n) => write!(f, "{n}"),
            StrLit(s) => write!(f, "{s:?}"),
            Ident(s) => write!(f, "{s}"),
            other => f.write_str(match other {
                Package => "package",
                Import => "import",
                Public => "public",
                Private => "private",
                Protected => "protected",
                Static => "static",
                Final => "final",
                Volatile => "volatile",
                Abstract => "abstract",
                Class => "class",
                Extends => "extends",
                Implements => "implements",
                Synchronized => "synchronized",
                Void => "void",
                Int => "int",
                Long => "long",
                Boolean => "boolean",
                If => "if",
                Else => "else",
                While => "while",
                Return => "return",
                New => "new",
                This => "this",
                True => "true",
                False => "false",
                Null => "null",
                Throws => "throws",
                LBrace => "{",
                RBrace => "}",
                LParen => "(",
                RParen => ")",
                LBracket => "[",
                RBracket => "]",
                Semi => ";",
                Comma => ",",
                Dot => ".",
                Assign => "=",
                PlusAssign => "+=",
                MinusAssign => "-=",
                PlusPlus => "++",
                MinusMinus => "--",
                EqEq => "==",
                NotEq => "!=",
                Lt => "<",
                Le => "<=",
                Gt => ">",
                Ge => ">=",
                Plus => "+",
                Minus => "-",
                Star => "*",
                Slash => "/",
                Percent => "%",
                AndAnd => "&&",
                OrOr => "||",
                Bang => "!",
                Eof => "<eof>",
                IntLit(_) | StrLit(_) | Ident(_) => unreachable!(),
            }),
        }
    }
}

fn keyword(word: &str) -> Option<Tok> {
    Some(match word {
        "package" => Tok::Package,
        "import" => Tok::Import,
        "public" => Tok::Public,
        "private" => Tok::Private,
        "protected" => Tok::Protected,
        "static" => Tok::Static,
        "final" => Tok::Final,
        "volatile" => Tok::Volatile,
        "abstract" => Tok::Abstract,
        "class" => Tok::Class,
        "extends" => Tok::Extends,
        "implements" => Tok::Implements,
        "synchronized" => Tok::Synchronized,
        "void" => Tok::Void,
        "int" => Tok::Int,
        "long" => Tok::Long,
        "boolean" => Tok::Boolean,
        "if" => Tok::If,
        "else" => Tok::Else,
        "while" => Tok::While,
        "return" => Tok::Return,
        "new" => Tok::New,
        "this" => Tok::This,
        "true" => Tok::True,
        "false" => Tok::False,
        "null" => Tok::Null,
        "throws" => Tok::Throws,
        _ => return None,
    })
}

/// Tokenize `src`. Always returns a token stream ending in [`Tok::Eof`];
/// unlexable input is reported in the diagnostic list and skipped.
pub fn lex(src: &str) -> (Vec<Token>, Vec<FrontDiag>) {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut diags = Vec::new();
    let mut i = 0usize;

    macro_rules! two {
        ($kind:expr) => {{
            tokens.push(Token {
                kind: $kind,
                span: Span::new(i, i + 2),
            });
            i += 2;
        }};
    }
    macro_rules! one {
        ($kind:expr) => {{
            tokens.push(Token {
                kind: $kind,
                span: Span::new(i, i + 1),
            });
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let c1 = bytes.get(i + 1).copied();
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' if c1 == Some(b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if c1 == Some(b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        diags.push(FrontDiag::new(
                            Phase::Parse,
                            Span::new(start, bytes.len()),
                            "unterminated block comment",
                        ));
                        i = bytes.len();
                        break;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'{' => one!(Tok::LBrace),
            b'}' => one!(Tok::RBrace),
            b'(' => one!(Tok::LParen),
            b')' => one!(Tok::RParen),
            b'[' => one!(Tok::LBracket),
            b']' => one!(Tok::RBracket),
            b';' => one!(Tok::Semi),
            b',' => one!(Tok::Comma),
            b'.' => one!(Tok::Dot),
            b'*' => one!(Tok::Star),
            b'/' => one!(Tok::Slash),
            b'%' => one!(Tok::Percent),
            b'=' if c1 == Some(b'=') => two!(Tok::EqEq),
            b'=' => one!(Tok::Assign),
            b'+' if c1 == Some(b'+') => two!(Tok::PlusPlus),
            b'+' if c1 == Some(b'=') => two!(Tok::PlusAssign),
            b'+' => one!(Tok::Plus),
            b'-' if c1 == Some(b'-') => two!(Tok::MinusMinus),
            b'-' if c1 == Some(b'=') => two!(Tok::MinusAssign),
            b'-' => one!(Tok::Minus),
            b'!' if c1 == Some(b'=') => two!(Tok::NotEq),
            b'!' => one!(Tok::Bang),
            b'<' if c1 == Some(b'=') => two!(Tok::Le),
            b'<' => one!(Tok::Lt),
            b'>' if c1 == Some(b'=') => two!(Tok::Ge),
            b'>' => one!(Tok::Gt),
            b'&' if c1 == Some(b'&') => two!(Tok::AndAnd),
            b'|' if c1 == Some(b'|') => two!(Tok::OrOr),
            b'&' | b'|' => {
                let op = if c == b'&' { "&&" } else { "||" };
                diags.push(FrontDiag::new(
                    Phase::Parse,
                    Span::new(i, i + 1),
                    format!("bitwise `{}` is not in the subset; expected `{op}`", c as char),
                ));
                i += 1;
            }
            b'"' => {
                let start = i;
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    match bytes.get(j) {
                        None => {
                            diags.push(FrontDiag::new(
                                Phase::Parse,
                                Span::new(start, j),
                                "unterminated string literal",
                            ));
                            break;
                        }
                        Some(&b'"') => {
                            j += 1;
                            break;
                        }
                        Some(&b'\n') => {
                            diags.push(FrontDiag::new(
                                Phase::Parse,
                                Span::new(start, j),
                                "newline in string literal",
                            ));
                            break;
                        }
                        Some(&b'\\') => {
                            match bytes.get(j + 1) {
                                Some(&b'n') => s.push('\n'),
                                Some(&b't') => s.push('\t'),
                                Some(&b'"') => s.push('"'),
                                Some(&b'\\') => s.push('\\'),
                                _ => diags.push(FrontDiag::new(
                                    Phase::Parse,
                                    Span::new(j, j + 2),
                                    "unknown escape sequence",
                                )),
                            }
                            j += 2;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            j += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: Tok::StrLit(s),
                    span: Span::new(start, j),
                });
                i = j;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // Tolerate Java's long suffix: `0L` lowers to plain Int.
                if i < bytes.len() && (bytes[i] == b'L' || bytes[i] == b'l') {
                    i += 1;
                }
                let text = src[start..i].trim_end_matches(['L', 'l']);
                match text.parse::<i64>() {
                    Ok(n) => tokens.push(Token {
                        kind: Tok::IntLit(n),
                        span: Span::new(start, i),
                    }),
                    Err(_) => diags.push(FrontDiag::new(
                        Phase::Parse,
                        Span::new(start, i),
                        format!("integer literal out of range: {text}"),
                    )),
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c == b'$' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                let word = &src[start..i];
                tokens.push(Token {
                    kind: keyword(word).unwrap_or_else(|| Tok::Ident(word.to_string())),
                    span: Span::new(start, i),
                });
            }
            other => {
                diags.push(FrontDiag::new(
                    Phase::Parse,
                    Span::new(i, i + 1),
                    format!("unexpected character `{}`", other as char),
                ));
                i += 1;
            }
        }
    }
    tokens.push(Token {
        kind: Tok::Eof,
        span: Span::new(bytes.len(), bytes.len()),
    });
    (tokens, diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        let (toks, diags) = lex(src);
        assert!(diags.is_empty(), "{diags:?}");
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            kinds("public synchronized void await(String name)"),
            vec![
                Tok::Public,
                Tok::Synchronized,
                Tok::Void,
                Tok::Ident("await".into()),
                Tok::LParen,
                Tok::Ident("String".into()),
                Tok::Ident("name".into()),
                Tok::RParen,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            kinds("== != <= >= && || ++ -- += -= = < > ! . ,"),
            vec![
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::PlusPlus,
                Tok::MinusMinus,
                Tok::PlusAssign,
                Tok::MinusAssign,
                Tok::Assign,
                Tok::Lt,
                Tok::Gt,
                Tok::Bang,
                Tok::Dot,
                Tok::Comma,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_long_suffix() {
        assert_eq!(
            kinds("x /* block\ncomment */ 42L // line\ny"),
            vec![
                Tok::Ident("x".into()),
                Tok::IntLit(42),
                Tok::Ident("y".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn spans_are_byte_accurate() {
        let (toks, _) = lex("ab\n  cd");
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(5, 7));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""a\nb" "q\"q""#),
            vec![
                Tok::StrLit("a\nb".into()),
                Tok::StrLit("q\"q".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_errors_recover_and_keep_tokenizing() {
        let (toks, diags) = lex("a # b & c");
        assert_eq!(diags.len(), 2);
        assert!(diags[0].message.contains('#'));
        assert!(diags[1].message.contains("&&"));
        let idents = toks
            .iter()
            .filter(|t| matches!(t.kind, Tok::Ident(_)))
            .count();
        assert_eq!(idents, 3, "all three identifiers survive");
    }

    #[test]
    fn unterminated_string_is_reported_once() {
        let (_, diags) = lex("\"oops");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unterminated"));
    }
}
