//! Byte spans and the [`SourceMap`] that converts them to line:column.
//!
//! Every token, AST node, and frontend diagnostic carries a [`Span`]: a
//! half-open byte range `[lo, hi)` into the original source text. Spans
//! stay cheap (`Copy`, two `u32`s) so the AST can carry one per node; the
//! [`SourceMap`] owns the text plus a line-start table and performs the
//! offset → line:column conversion lazily, only when a diagnostic is
//! actually rendered.

use std::fmt;

/// A half-open byte range `[lo, hi)` into one source file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Start byte offset, inclusive.
    pub lo: u32,
    /// End byte offset, exclusive.
    pub hi: u32,
}

impl Span {
    /// A span over `[lo, hi)`.
    pub fn new(lo: usize, hi: usize) -> Span {
        Span {
            lo: lo as u32,
            hi: hi as u32,
        }
    }

    /// The zero-width placeholder span (offset 0); used when a construct
    /// has no principled anchor, e.g. an EOF-adjacent recovery point.
    pub const DUMMY: Span = Span { lo: 0, hi: 0 };

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Byte length of the span.
    pub fn len(self) -> u32 {
        self.hi.saturating_sub(self.lo)
    }

    /// True when the span covers no bytes.
    pub fn is_empty(self) -> bool {
        self.hi <= self.lo
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// One source file with its line-start table: the span → line:column
/// oracle for diagnostic rendering.
#[derive(Debug, Clone)]
pub struct SourceMap {
    name: String,
    src: String,
    /// Byte offset of the start of each line, ascending; `line_starts[0]`
    /// is always 0.
    line_starts: Vec<u32>,
}

impl SourceMap {
    /// Build the map for `src`, displayed as `name` in diagnostics.
    pub fn new(name: impl Into<String>, src: impl Into<String>) -> SourceMap {
        let src = src.into();
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap {
            name: name.into(),
            src,
            line_starts,
        }
    }

    /// The display name (usually the file path).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full source text.
    pub fn src(&self) -> &str {
        &self.src
    }

    /// Number of lines (a trailing newline does not open a new line).
    pub fn line_count(&self) -> u32 {
        let n = self.line_starts.len() as u32;
        if self
            .line_starts
            .last()
            .is_some_and(|&s| s as usize >= self.src.len())
            && n > 1
        {
            n - 1
        } else {
            n
        }
    }

    /// Convert a byte offset to 1-based `(line, column)`. Offsets past the
    /// end of the text land on the last line.
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let col = offset - self.line_starts[line_idx] + 1;
        (line_idx as u32 + 1, col)
    }

    /// The text of 1-based `line`, without its trailing newline.
    pub fn line_text(&self, line: u32) -> &str {
        let idx = (line as usize).saturating_sub(1);
        let start = match self.line_starts.get(idx) {
            Some(&s) => s as usize,
            None => return "",
        };
        let end = self
            .line_starts
            .get(idx + 1)
            .map(|&e| e as usize)
            .unwrap_or(self.src.len());
        self.src[start..end].trim_end_matches(['\n', '\r'])
    }

    /// The source text the span covers.
    pub fn snippet(&self, span: Span) -> &str {
        let lo = (span.lo as usize).min(self.src.len());
        let hi = (span.hi as usize).min(self.src.len()).max(lo);
        &self.src[lo..hi]
    }

    /// Lines of code: non-blank, non-comment-only lines. The throughput
    /// denominator E13 publishes.
    pub fn loc(&self) -> usize {
        self.src
            .lines()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with("//") && !t.starts_with('*') && !t.starts_with("/*")
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_arithmetic() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        assert!(Span::DUMMY.is_empty());
        assert_eq!(a.to_string(), "3..7");
    }

    #[test]
    fn line_col_conversion() {
        let sm = SourceMap::new("T.java", "ab\ncde\n\nf");
        assert_eq!(sm.line_col(0), (1, 1));
        assert_eq!(sm.line_col(1), (1, 2));
        assert_eq!(sm.line_col(3), (2, 1));
        assert_eq!(sm.line_col(5), (2, 3));
        assert_eq!(sm.line_col(7), (3, 1));
        assert_eq!(sm.line_col(8), (4, 1));
        assert_eq!(sm.line_count(), 4);
    }

    #[test]
    fn line_text_strips_newline() {
        let sm = SourceMap::new("T.java", "ab\r\ncde\n");
        assert_eq!(sm.line_text(1), "ab");
        assert_eq!(sm.line_text(2), "cde");
        assert_eq!(sm.line_text(99), "");
    }

    #[test]
    fn snippet_clamps_to_text() {
        let sm = SourceMap::new("T.java", "hello");
        assert_eq!(sm.snippet(Span::new(1, 4)), "ell");
        assert_eq!(sm.snippet(Span::new(3, 99)), "lo");
    }

    #[test]
    fn loc_skips_blank_and_comment_lines() {
        let sm = SourceMap::new(
            "T.java",
            "// header\nclass A {\n\n  /* doc */\n  int x;\n}\n",
        );
        assert_eq!(sm.loc(), 3);
    }
}
