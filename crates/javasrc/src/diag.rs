//! Frontend diagnostics: parse and lowering errors with spans.
//!
//! These are distinct from analyzer [`jcc_analyze::Diagnostic`]s: a
//! [`FrontDiag`] means the *frontend* could not fully understand the
//! source (syntax error, unsupported construct, unresolved name), while
//! analyzer diagnostics report concurrency defects in code the frontend
//! understood. The `jcc check` exit-code contract keeps them apart:
//! frontend errors exit 2, findings exit 1.

use crate::span::Span;

/// Which frontend phase produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Lexing or parsing: the source is not syntactically in the subset.
    Parse,
    /// Lowering: syntactically fine but not expressible in the Monitor IR
    /// (unknown name, unsupported type, ill-typed operation).
    Lower,
}

impl Phase {
    /// Stable lower-case name, used in rendering and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Lower => "lower",
        }
    }
}

/// One recoverable frontend error, anchored to a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontDiag {
    /// The phase that failed.
    pub phase: Phase,
    /// Where in the file.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
    /// Optional `help:` line with a suggested fix.
    pub help: Option<String>,
}

impl FrontDiag {
    /// A diagnostic with no help text.
    pub fn new(phase: Phase, span: Span, message: impl Into<String>) -> FrontDiag {
        FrontDiag {
            phase,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attach a `help:` suggestion.
    pub fn with_help(mut self, help: impl Into<String>) -> FrontDiag {
        self.help = Some(help.into());
        self
    }
}
