//! Recursive-descent parser for the Java subset, with panic-mode recovery.
//!
//! The parser never aborts: a syntax error is recorded as a [`FrontDiag`]
//! and the parser synchronizes to the next `;` or `}` and keeps going, so
//! one malformed statement does not hide the rest of the file (the E13
//! recovery fixture asserts exactly this). `package`/`import` headers,
//! `extends`/`implements` clauses, `throws` lists, and access modifiers
//! are parsed and discarded — they carry no concurrency meaning.

use crate::ast::*;
use crate::diag::{FrontDiag, Phase};
use crate::lexer::{lex, Tok, Token};
use crate::span::Span;

/// Parse one `.java` source text. Always returns a unit (possibly with no
/// classes); syntax errors are reported in the diagnostic list.
pub fn parse(src: &str) -> (CompilationUnit, Vec<FrontDiag>) {
    let (tokens, mut diags) = lex(src);
    let mut p = Parser {
        tokens,
        pos: 0,
        diags: Vec::new(),
    };
    let unit = p.parse_unit();
    diags.append(&mut p.diags);
    (unit, diags)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    diags: Vec<FrontDiag>,
}

/// Statement-level parse failure; the caller synchronizes.
struct Recover;

type PResult<T> = Result<T, Recover>;

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, n: usize) -> &Tok {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &Tok) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &Tok) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn error(&mut self, span: Span, message: impl Into<String>) {
        self.diags.push(FrontDiag::new(Phase::Parse, span, message));
    }

    fn expect(&mut self, kind: &Tok, what: &str) -> PResult<Span> {
        if self.at(kind) {
            Ok(self.bump().span)
        } else {
            let found = self.peek().clone();
            let span = self.peek_span();
            self.error(span, format!("expected {what}, found `{found}`"));
            Err(Recover)
        }
    }

    fn expect_ident(&mut self, what: &str) -> PResult<(String, Span)> {
        if let Tok::Ident(name) = self.peek() {
            let name = name.clone();
            let span = self.bump().span;
            Ok((name, span))
        } else {
            let found = self.peek().clone();
            let span = self.peek_span();
            self.error(span, format!("expected {what}, found `{found}`"));
            Err(Recover)
        }
    }

    /// Panic-mode recovery: skip to just past the next `;`, or stop before
    /// `}` / `Eof` so the enclosing block can close normally.
    fn synchronize(&mut self) {
        loop {
            match self.peek() {
                Tok::Semi => {
                    self.bump();
                    return;
                }
                Tok::RBrace | Tok::Eof => return,
                // A statement keyword is a safe place to resume too.
                Tok::While | Tok::If | Tok::Return | Tok::Synchronized => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ---- compilation unit ------------------------------------------------

    fn parse_unit(&mut self) -> CompilationUnit {
        let mut classes = Vec::new();
        while !self.at(&Tok::Eof) {
            match self.peek() {
                Tok::Package | Tok::Import => {
                    // `package a.b.c;` / `import a.b.C;` — no concurrency
                    // meaning; skip to the terminating semicolon.
                    self.bump();
                    while !self.at(&Tok::Semi) && !self.at(&Tok::Eof) {
                        self.bump();
                    }
                    self.eat(&Tok::Semi);
                }
                _ => {
                    if let Some(class) = self.parse_class() {
                        classes.push(class);
                    }
                }
            }
        }
        CompilationUnit { classes }
    }

    fn skip_modifiers(&mut self) -> bool {
        let mut synchronized = false;
        loop {
            match self.peek() {
                Tok::Public
                | Tok::Private
                | Tok::Protected
                | Tok::Static
                | Tok::Final
                | Tok::Volatile
                | Tok::Abstract => {
                    self.bump();
                }
                Tok::Synchronized => {
                    synchronized = true;
                    self.bump();
                }
                _ => return synchronized,
            }
        }
    }

    fn parse_class(&mut self) -> Option<ClassDecl> {
        let start = self.peek_span();
        self.skip_modifiers();
        if !self.eat(&Tok::Class) {
            let found = self.peek().clone();
            let span = self.peek_span();
            self.error(span, format!("expected `class`, found `{found}`"));
            // Not even a class header: skip one token and retry at the
            // unit level rather than looping forever.
            self.bump();
            return None;
        }
        let (name, name_span) = match self.expect_ident("a class name") {
            Ok(v) => v,
            Err(Recover) => ("<error>".to_string(), self.peek_span()),
        };
        // `extends Base` / `implements I1, I2` — skip to the class body.
        while !self.at(&Tok::LBrace) && !self.at(&Tok::Eof) {
            self.bump();
        }
        let mut class = ClassDecl {
            name,
            name_span,
            span: start,
            fields: Vec::new(),
            methods: Vec::new(),
        };
        if self.expect(&Tok::LBrace, "`{` to open the class body").is_err() {
            return Some(class);
        }
        while !self.at(&Tok::RBrace) && !self.at(&Tok::Eof) {
            if self.parse_member(&mut class).is_err() {
                self.synchronize();
            }
        }
        let end = self.peek_span();
        self.eat(&Tok::RBrace);
        class.span = start.to(end);
        Some(class)
    }

    // ---- class members ---------------------------------------------------

    fn parse_member(&mut self, class: &mut ClassDecl) -> PResult<()> {
        let start = self.peek_span();
        let synchronized = self.skip_modifiers();

        // Constructor: the class name directly followed by `(`.
        if let Tok::Ident(n) = self.peek() {
            if n == &class.name && self.peek_at(1) == &Tok::LParen {
                let (name, name_span) = self.expect_ident("a constructor name")?;
                let method = self.finish_method(name, name_span, start, synchronized, JType::Void)?;
                class.methods.push(method);
                return Ok(());
            }
        }

        let ty = self.parse_type()?;
        let (name, name_span) = self.expect_ident("a field or method name")?;

        if self.at(&Tok::LParen) {
            let method = self.finish_method(name, name_span, start, synchronized, ty)?;
            class.methods.push(method);
        } else {
            let field = self.finish_field(name, name_span, start, ty)?;
            class.fields.push(field);
        }
        Ok(())
    }

    fn parse_type(&mut self) -> PResult<JType> {
        let ty = match self.peek().clone() {
            Tok::Int | Tok::Long => JType::Int,
            Tok::Boolean => JType::Bool,
            Tok::Void => JType::Void,
            Tok::Ident(n) => match n.as_str() {
                "String" => JType::Str,
                "Object" => JType::Object,
                _ => JType::Other(n),
            },
            found => {
                let span = self.peek_span();
                self.error(span, format!("expected a type, found `{found}`"));
                return Err(Recover);
            }
        };
        self.bump();
        if self.at(&Tok::LBracket) {
            let span = self.peek_span();
            self.error(span, "array types are not in the subset");
            return Err(Recover);
        }
        Ok(ty)
    }

    fn finish_field(
        &mut self,
        name: String,
        name_span: Span,
        start: Span,
        ty: JType,
    ) -> PResult<FieldDecl> {
        let mut is_lock = false;
        let mut init = None;
        if self.eat(&Tok::Assign) {
            // `= new Object()` declares an auxiliary lock; any other `new`
            // is outside the subset.
            if self.at(&Tok::New) {
                let new_span = self.bump().span;
                let (cls, _) = self.expect_ident("a class name after `new`")?;
                self.expect(&Tok::LParen, "`(`")?;
                self.expect(&Tok::RParen, "`)`")?;
                if cls == "Object" && ty == JType::Object {
                    is_lock = true;
                } else {
                    self.error(
                        new_span,
                        format!("`new {cls}()` is not in the subset"),
                    );
                    self.diags.last_mut().unwrap().help = Some(
                        "only `Object lock = new Object()` lock declarations are supported"
                            .to_string(),
                    );
                }
            } else {
                init = Some(self.parse_expr()?);
            }
        }
        let end = self.expect(&Tok::Semi, "`;` after the field declaration")?;
        Ok(FieldDecl {
            name,
            name_span,
            span: start.to(end),
            ty,
            is_lock,
            init,
        })
    }

    fn finish_method(
        &mut self,
        name: String,
        name_span: Span,
        start: Span,
        synchronized: bool,
        ret: JType,
    ) -> PResult<MethodDecl> {
        self.expect(&Tok::LParen, "`(` to open the parameter list")?;
        let mut params = Vec::new();
        if !self.at(&Tok::RParen) {
            loop {
                let pstart = self.peek_span();
                let ty = self.parse_type()?;
                let (pname, pspan) = self.expect_ident("a parameter name")?;
                params.push(ParamDecl {
                    name: pname,
                    ty,
                    span: pstart.to(pspan),
                });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)` to close the parameter list")?;
        if self.eat(&Tok::Throws) {
            loop {
                self.expect_ident("an exception class name")?;
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        // Abstract/interface-style bodyless method.
        if self.at(&Tok::Semi) {
            let end = self.bump().span;
            return Ok(MethodDecl {
                name,
                name_span,
                span: start.to(end),
                synchronized,
                ret,
                params,
                body: Vec::new(),
            });
        }
        self.expect(&Tok::LBrace, "`{` to open the method body")?;
        let body = self.parse_block_body();
        let end = self.prev_span();
        Ok(MethodDecl {
            name,
            name_span,
            span: start.to(end),
            synchronized,
            ret,
            params,
            body,
        })
    }

    // ---- statements ------------------------------------------------------

    /// Parse statements up to and including the closing `}` of an
    /// already-opened block.
    fn parse_block_body(&mut self) -> Vec<JStmt> {
        let mut out = Vec::new();
        while !self.at(&Tok::RBrace) && !self.at(&Tok::Eof) {
            if self.parse_stmt_into(&mut out).is_err() {
                self.synchronize();
            }
        }
        self.eat(&Tok::RBrace);
        out
    }

    /// One statement (or a spliced bare block) appended to `out`.
    fn parse_stmt_into(&mut self, out: &mut Vec<JStmt>) -> PResult<()> {
        if self.eat(&Tok::LBrace) {
            // A bare `{ ... }` scope: Java scoping has no concurrency
            // meaning here, so its statements are spliced inline.
            let inner = self.parse_block_body();
            out.extend(inner);
            return Ok(());
        }
        let stmt = self.parse_stmt()?;
        out.push(stmt);
        Ok(())
    }

    /// A block `{ ... }` or a single statement, as after `while (..)`.
    fn parse_body(&mut self) -> PResult<Vec<JStmt>> {
        if self.eat(&Tok::LBrace) {
            Ok(self.parse_block_body())
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_stmt(&mut self) -> PResult<JStmt> {
        let start = self.peek_span();
        match self.peek().clone() {
            Tok::Semi => {
                self.bump();
                Ok(JStmt {
                    kind: JStmtKind::Empty,
                    span: start,
                })
            }
            Tok::While => {
                self.bump();
                self.expect(&Tok::LParen, "`(` after `while`")?;
                let cond = self.parse_expr()?;
                self.expect(&Tok::RParen, "`)` after the loop condition")?;
                let body = self.parse_body()?;
                Ok(JStmt {
                    kind: JStmtKind::While { cond, body },
                    span: start.to(self.prev_span()),
                })
            }
            Tok::If => {
                self.bump();
                self.expect(&Tok::LParen, "`(` after `if`")?;
                let cond = self.parse_expr()?;
                self.expect(&Tok::RParen, "`)` after the condition")?;
                let then_branch = self.parse_body()?;
                let else_branch = if self.eat(&Tok::Else) {
                    if self.at(&Tok::If) {
                        // `else if` chains nest as a one-statement else.
                        vec![self.parse_stmt()?]
                    } else {
                        self.parse_body()?
                    }
                } else {
                    Vec::new()
                };
                Ok(JStmt {
                    kind: JStmtKind::If {
                        cond,
                        then_branch,
                        else_branch,
                    },
                    span: start.to(self.prev_span()),
                })
            }
            Tok::Synchronized => {
                self.bump();
                self.expect(&Tok::LParen, "`(` after `synchronized`")?;
                let recv_expr = self.parse_expr()?;
                let recv_span = recv_expr.span;
                let recv = self.receiver_of(&recv_expr)?;
                self.expect(&Tok::RParen, "`)` after the lock expression")?;
                self.expect(&Tok::LBrace, "`{` to open the synchronized block")?;
                let body = self.parse_block_body();
                Ok(JStmt {
                    kind: JStmtKind::Synchronized {
                        recv,
                        recv_span,
                        body,
                    },
                    span: start.to(self.prev_span()),
                })
            }
            Tok::Return => {
                self.bump();
                let value = if self.at(&Tok::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                let end = self.expect(&Tok::Semi, "`;` after `return`")?;
                Ok(JStmt {
                    kind: JStmtKind::Return(value),
                    span: start.to(end),
                })
            }
            // Local declaration: a primitive type, or `Name name ...`.
            Tok::Int | Tok::Long | Tok::Boolean => self.parse_local(start),
            Tok::Ident(_) if matches!(self.peek_at(1), Tok::Ident(_)) => self.parse_local(start),
            // Assignment / increment on a bare identifier.
            Tok::Ident(name)
                if matches!(
                    self.peek_at(1),
                    Tok::Assign
                        | Tok::PlusAssign
                        | Tok::MinusAssign
                        | Tok::PlusPlus
                        | Tok::MinusMinus
                ) =>
            {
                let target_span = self.bump().span;
                self.finish_assign(name, false, target_span, start)
            }
            // `this.f = ...` / `this.f++` field assignment.
            Tok::This
                if matches!(self.peek_at(1), Tok::Dot)
                    && matches!(self.peek_at(2), Tok::Ident(_))
                    && matches!(
                        self.peek_at(3),
                        Tok::Assign
                            | Tok::PlusAssign
                            | Tok::MinusAssign
                            | Tok::PlusPlus
                            | Tok::MinusMinus
                    ) =>
            {
                self.bump(); // this
                self.bump(); // .
                let (name, tspan) = self.expect_ident("a field name")?;
                self.finish_assign(name, true, start.to(tspan), start)
            }
            _ => {
                // Expression statement: a call. Monitor operations become
                // first-class statements here.
                let expr = self.parse_expr()?;
                let end = self.expect(&Tok::Semi, "`;` after the expression")?;
                let span = start.to(end);
                let kind = self.expr_statement_kind(expr)?;
                Ok(JStmt { kind, span })
            }
        }
    }

    fn parse_local(&mut self, start: Span) -> PResult<JStmt> {
        let ty = self.parse_type()?;
        let (name, name_span) = self.expect_ident("a variable name")?;
        self.expect(&Tok::Assign, "`=` (locals must be initialized)")?;
        let init = self.parse_expr()?;
        let end = self.expect(&Tok::Semi, "`;` after the declaration")?;
        Ok(JStmt {
            kind: JStmtKind::Local {
                name,
                ty,
                name_span,
                init,
            },
            span: start.to(end),
        })
    }

    /// After the target of an assignment: `= e;`, `+= e;`, `-= e;`,
    /// `++;`, `--;` — compound forms desugar to plain assignment.
    fn finish_assign(
        &mut self,
        target: String,
        explicit_this: bool,
        target_span: Span,
        start: Span,
    ) -> PResult<JStmt> {
        let base = JExpr {
            kind: if explicit_this {
                JExprKind::FieldAccess(target.clone())
            } else {
                JExprKind::Ident(target.clone())
            },
            span: target_span,
        };
        let op = self.bump();
        let value = match op.kind {
            Tok::Assign => self.parse_expr()?,
            Tok::PlusAssign | Tok::PlusPlus | Tok::MinusAssign | Tok::MinusMinus => {
                let rhs = match op.kind {
                    Tok::PlusPlus | Tok::MinusMinus => JExpr {
                        kind: JExprKind::Int(1),
                        span: op.span,
                    },
                    _ => self.parse_expr()?,
                };
                let bop = match op.kind {
                    Tok::PlusAssign | Tok::PlusPlus => BinOpKind::Add,
                    _ => BinOpKind::Sub,
                };
                let span = base.span.to(rhs.span);
                JExpr {
                    kind: JExprKind::Binary(bop, Box::new(base), Box::new(rhs)),
                    span,
                }
            }
            _ => unreachable!("caller checked the operator token"),
        };
        let end = self.expect(&Tok::Semi, "`;` after the assignment")?;
        Ok(JStmt {
            kind: JStmtKind::Assign {
                target,
                explicit_this,
                target_span,
                value,
            },
            span: start.to(end),
        })
    }

    /// Classify an expression statement: `recv.wait()` family becomes a
    /// monitor-operation statement, everything else stays an [`JStmtKind::ExprStmt`].
    fn expr_statement_kind(&mut self, expr: JExpr) -> PResult<JStmtKind> {
        if let JExprKind::Call { recv, name, args } = &expr.kind {
            if matches!(name.as_str(), "wait" | "notify" | "notifyAll") {
                if !args.is_empty() {
                    self.error(
                        expr.span,
                        format!("`{name}` with arguments (timed wait) is not in the subset"),
                    );
                    return Err(Recover);
                }
                let receiver = match recv.as_deref() {
                    None => Receiver::This,
                    Some(r) => self.receiver_of(r)?,
                };
                return Ok(match name.as_str() {
                    "wait" => JStmtKind::Wait { recv: receiver },
                    "notify" => JStmtKind::Notify { recv: receiver },
                    _ => JStmtKind::NotifyAll { recv: receiver },
                });
            }
        }
        Ok(JStmtKind::ExprStmt(expr))
    }

    /// Convert an expression in receiver position (`synchronized (e)`,
    /// `e.wait()`) to a [`Receiver`].
    fn receiver_of(&mut self, e: &JExpr) -> PResult<Receiver> {
        match &e.kind {
            JExprKind::Ident(n) if n == "this" => Ok(Receiver::This),
            JExprKind::Ident(n) => Ok(Receiver::Name(n.clone())),
            JExprKind::FieldAccess(n) => Ok(Receiver::Name(n.clone())),
            _ => {
                self.error(
                    e.span,
                    "a monitor receiver must be `this`, a field, or `this.field`",
                );
                Err(Recover)
            }
        }
    }

    // ---- expressions -----------------------------------------------------

    fn parse_expr(&mut self) -> PResult<JExpr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> PResult<JExpr> {
        let mut lhs = self.parse_and()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.parse_and()?;
            let span = lhs.span.to(rhs.span);
            lhs = JExpr {
                kind: JExprKind::Binary(BinOpKind::Or, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> PResult<JExpr> {
        let mut lhs = self.parse_equality()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.parse_equality()?;
            let span = lhs.span.to(rhs.span);
            lhs = JExpr {
                kind: JExprKind::Binary(BinOpKind::And, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> PResult<JExpr> {
        let mut lhs = self.parse_relational()?;
        loop {
            let op = match self.peek() {
                Tok::EqEq => BinOpKind::Eq,
                Tok::NotEq => BinOpKind::Ne,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_relational()?;
            let span = lhs.span.to(rhs.span);
            lhs = JExpr {
                kind: JExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
    }

    fn parse_relational(&mut self) -> PResult<JExpr> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinOpKind::Lt,
                Tok::Le => BinOpKind::Le,
                Tok::Gt => BinOpKind::Gt,
                Tok::Ge => BinOpKind::Ge,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_additive()?;
            let span = lhs.span.to(rhs.span);
            lhs = JExpr {
                kind: JExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
    }

    fn parse_additive(&mut self) -> PResult<JExpr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOpKind::Add,
                Tok::Minus => BinOpKind::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            let span = lhs.span.to(rhs.span);
            lhs = JExpr {
                kind: JExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
    }

    fn parse_multiplicative(&mut self) -> PResult<JExpr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOpKind::Mul,
                Tok::Slash => BinOpKind::Div,
                Tok::Percent => BinOpKind::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_unary()?;
            let span = lhs.span.to(rhs.span);
            lhs = JExpr {
                kind: JExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
    }

    fn parse_unary(&mut self) -> PResult<JExpr> {
        let start = self.peek_span();
        let op = match self.peek() {
            Tok::Minus => Some(UnOpKind::Neg),
            Tok::Bang => Some(UnOpKind::Not),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.parse_unary()?;
            let span = start.to(operand.span);
            return Ok(JExpr {
                kind: JExprKind::Unary(op, Box::new(operand)),
                span,
            });
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> PResult<JExpr> {
        let mut e = self.parse_primary()?;
        while self.eat(&Tok::Dot) {
            let (name, nspan) = self.expect_ident("a member name after `.`")?;
            if self.eat(&Tok::LParen) {
                let mut args = Vec::new();
                if !self.at(&Tok::RParen) {
                    loop {
                        args.push(self.parse_expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                let end = self.expect(&Tok::RParen, "`)` to close the argument list")?;
                let span = e.span.to(end);
                e = JExpr {
                    kind: JExprKind::Call {
                        recv: Some(Box::new(e)),
                        name,
                        args,
                    },
                    span,
                };
            } else {
                let span = e.span.to(nspan);
                // `this.f` is a field access; `x.f` on anything else is a
                // path we cannot model — keep it as a field access on the
                // *last* segment so `this.lock.wait()` still resolves.
                let is_this = matches!(&e.kind, JExprKind::Ident(n) if n == "this");
                if is_this {
                    e = JExpr {
                        kind: JExprKind::FieldAccess(name),
                        span,
                    };
                } else {
                    self.error(span, format!("member access `.{name}` is not in the subset"));
                    return Err(Recover);
                }
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> PResult<JExpr> {
        let span = self.peek_span();
        let kind = match self.peek().clone() {
            Tok::IntLit(n) => {
                self.bump();
                JExprKind::Int(n)
            }
            Tok::True => {
                self.bump();
                JExprKind::Bool(true)
            }
            Tok::False => {
                self.bump();
                JExprKind::Bool(false)
            }
            Tok::StrLit(s) => {
                self.bump();
                JExprKind::Str(s)
            }
            Tok::This => {
                self.bump();
                // `this` only means something under a postfix `.member` or
                // in receiver position; both handle this marker.
                JExprKind::Ident("this".to_string())
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.at(&Tok::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(&Tok::RParen, "`)` to close the argument list")?;
                    return Ok(JExpr {
                        kind: JExprKind::Call {
                            recv: None,
                            name,
                            args,
                        },
                        span: span.to(end),
                    });
                }
                JExprKind::Ident(name)
            }
            Tok::LParen => {
                self.bump();
                let inner = self.parse_expr()?;
                let end = self.expect(&Tok::RParen, "`)`")?;
                return Ok(JExpr {
                    kind: inner.kind,
                    span: span.to(end),
                });
            }
            Tok::Null => {
                self.bump();
                self.error(span, "`null` is not in the subset");
                return Err(Recover);
            }
            Tok::New => {
                self.bump();
                self.error(
                    span,
                    "`new` is only supported in `Object lock = new Object()` field declarations",
                );
                return Err(Recover);
            }
            found => {
                self.error(span, format!("expected an expression, found `{found}`"));
                return Err(Recover);
            }
        };
        Ok(JExpr { kind, span })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_clean(src: &str) -> CompilationUnit {
        let (unit, diags) = parse(src);
        assert!(diags.is_empty(), "{diags:?}");
        unit
    }

    #[test]
    fn minimal_class_with_field_and_method() {
        let unit = parse_clean(
            "package p;\nimport java.util.List;\n\
             public class Cell { private int v = 0; \
             public synchronized int get() { return v; } }",
        );
        assert_eq!(unit.classes.len(), 1);
        let c = &unit.classes[0];
        assert_eq!(c.name, "Cell");
        assert_eq!(c.fields.len(), 1);
        assert_eq!(c.fields[0].name, "v");
        assert!(!c.fields[0].is_lock);
        assert_eq!(c.methods.len(), 1);
        assert!(c.methods[0].synchronized);
        assert_eq!(c.methods[0].ret, JType::Int);
    }

    #[test]
    fn lock_field_and_synchronized_block() {
        let unit = parse_clean(
            "class B { private final Object lock = new Object(); \
             void m() { synchronized (lock) { lock.notifyAll(); } } }",
        );
        let c = &unit.classes[0];
        assert!(c.fields[0].is_lock);
        let m = &c.methods[0];
        match &m.body[0].kind {
            JStmtKind::Synchronized { recv, body, .. } => {
                assert_eq!(recv, &Receiver::Name("lock".into()));
                assert!(matches!(
                    body[0].kind,
                    JStmtKind::NotifyAll {
                        recv: Receiver::Name(_)
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wait_in_while_with_implicit_this() {
        let unit = parse_clean(
            "class W { boolean ready = false; \
             synchronized void await() { while (!ready) { wait(); } } }",
        );
        let m = &unit.classes[0].methods[0];
        match &m.body[0].kind {
            JStmtKind::While { body, .. } => {
                assert!(matches!(
                    body[0].kind,
                    JStmtKind::Wait {
                        recv: Receiver::This
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compound_assignment_desugars() {
        let unit = parse_clean("class C { int n = 0; synchronized void inc() { n += 2; n++; } }");
        let m = &unit.classes[0].methods[0];
        for stmt in &m.body {
            match &stmt.kind {
                JStmtKind::Assign { target, value, .. } => {
                    assert_eq!(target, "n");
                    assert!(matches!(value.kind, JExprKind::Binary(BinOpKind::Add, _, _)));
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn else_if_chain_and_this_field_assign() {
        let unit = parse_clean(
            "class C { int s = 0; synchronized void m(int x) { \
             if (x > 0) { this.s = 1; } else if (x < 0) { s = 2; } else { s = 3; } } }",
        );
        let m = &unit.classes[0].methods[0];
        match &m.body[0].kind {
            JStmtKind::If { else_branch, .. } => {
                assert!(matches!(else_branch[0].kind, JStmtKind::If { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_calls_stay_expression_statements() {
        let unit = parse_clean("class C { void m() { helper(1); } }");
        let m = &unit.classes[0].methods[0];
        assert!(matches!(m.body[0].kind, JStmtKind::ExprStmt(_)));
    }

    #[test]
    fn recovery_resumes_after_bad_statement() {
        let (unit, diags) = parse(
            "class R { int n = 0; \
             synchronized void m() { n = ; n = 1; } \
             synchronized int get() { return n; } }",
        );
        assert!(!diags.is_empty());
        let c = &unit.classes[0];
        assert_eq!(c.methods.len(), 2, "second method survives the error");
        // The bad assignment is dropped, the good one is kept.
        assert_eq!(c.methods[0].body.len(), 1);
    }

    #[test]
    fn timed_wait_is_rejected() {
        let (_, diags) = parse("class T { synchronized void m() { wait(100); } }");
        assert!(diags.iter().any(|d| d.message.contains("timed wait")));
    }

    #[test]
    fn spans_point_at_the_wait_call() {
        let src = "class S { synchronized void m() { wait(); } }";
        let (unit, diags) = parse(src);
        assert!(diags.is_empty());
        let stmt = &unit.classes[0].methods[0].body[0];
        assert_eq!(&src[stmt.span.lo as usize..stmt.span.hi as usize], "wait();");
    }
}
