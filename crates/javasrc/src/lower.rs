//! Lowering: span-carrying Java AST → the Monitor IR, plus the
//! [`LowerMap`] that carries MIR locations back to source spans.
//!
//! Lowering is **total**: it always produces a [`Component`] (possibly
//! with `Skip` placeholders) and reports anything it cannot express as a
//! [`FrontDiag`] instead of panicking — the proptest in
//! `tests/java_frontend.rs` holds it to that. The rules:
//!
//! * class → [`Component`]; `Object` fields (with or without the
//!   `new Object()` initializer) → declared auxiliary locks,
//! * `synchronized` method modifier → [`Method::synchronized`];
//!   `synchronized (e) { .. }` → [`Stmt::Synchronized`] with the lock
//!   identity resolved from the receiver (`this` / declared lock field),
//! * `recv.wait()` / `notify()` / `notifyAll()` → the monitor statements,
//! * `if`/`while`/assignment/locals map structurally; `x++`/`x += e`
//!   arrive pre-desugared from the parser,
//! * calls to methods outside the modeled subset (`System.out.println`,
//!   helper methods) → [`Stmt::Skip`]: they move no monitor state,
//! * constructors are dropped: field initializers already carry the
//!   initial state.

use std::collections::{HashMap, HashSet};

use jcc_model::ast::{
    BinOp, Block, Builtin, Component, Expr, Field, LValue, LockRef, Method, Param, Stmt, Type,
    UnOp, ELSE_OFFSET,
};

use crate::ast::*;
use crate::diag::{FrontDiag, Phase};
use crate::span::Span;

/// Maps MIR locations (method name + statement path) back to the source
/// spans they were lowered from. Resolution falls back outward: statement
/// → method declaration → class declaration, so every analyzer diagnostic
/// gets *some* anchor even when its path points at synthesized code.
#[derive(Debug, Clone, Default)]
pub struct LowerMap {
    /// Span of the class declaration's name.
    pub class_span: Span,
    /// Span of each method's name, by method name.
    pub methods: HashMap<String, Span>,
    /// Span of each lowered statement, by (method name, statement path).
    pub stmts: HashMap<(String, Vec<usize>), Span>,
}

impl LowerMap {
    /// Resolve a MIR location to the most precise span available.
    pub fn resolve(&self, method: &str, path: Option<&[usize]>) -> Span {
        if let Some(p) = path {
            if let Some(s) = self.stmts.get(&(method.to_string(), p.to_vec())) {
                return *s;
            }
        }
        self.methods.get(method).copied().unwrap_or(self.class_span)
    }
}

/// Result of lowering one class.
pub struct Lowered {
    /// The Monitor IR component.
    pub component: Component,
    /// MIR → source span map.
    pub map: LowerMap,
    /// Everything the lowerer could not express.
    pub diags: Vec<FrontDiag>,
}

/// Lower one parsed class to the Monitor IR.
pub fn lower_class(class: &ClassDecl) -> Lowered {
    let mut cx = Lower {
        map: LowerMap {
            class_span: class.name_span,
            ..LowerMap::default()
        },
        diags: Vec::new(),
        locks: HashSet::new(),
        fields: HashSet::new(),
        locals: HashSet::new(),
    };

    let mut component = Component {
        name: class.name.clone(),
        locks: Vec::new(),
        fields: Vec::new(),
        methods: Vec::new(),
    };

    for f in &class.fields {
        match &f.ty {
            JType::Object => {
                // With or without `= new Object()`: an auxiliary lock.
                component.locks.push(f.name.clone());
                cx.locks.insert(f.name.clone());
            }
            JType::Int | JType::Bool | JType::Str => {
                let ty = cx.scalar_type(&f.ty).expect("scalar arm");
                let init = match &f.init {
                    Some(e) => cx.lower_expr(e),
                    None => default_init(ty),
                };
                component.fields.push(Field {
                    name: f.name.clone(),
                    ty,
                    init,
                });
                cx.fields.insert(f.name.clone());
            }
            other => {
                cx.diags.push(
                    FrontDiag::new(
                        Phase::Lower,
                        f.span,
                        format!("field type `{}` is not in the subset", other.render()),
                    )
                    .with_help("use int, long, boolean, String, or Object (as a lock)"),
                );
            }
        }
    }

    for m in &class.methods {
        if m.name == class.name {
            // Constructor: initial state lives in the field initializers.
            continue;
        }
        cx.map.methods.insert(m.name.clone(), m.name_span);
        cx.locals.clear();
        let mut params = Vec::new();
        for p in &m.params {
            let ty = cx.scalar_type(&p.ty).unwrap_or_else(|| {
                cx.diags.push(FrontDiag::new(
                    Phase::Lower,
                    p.span,
                    format!("parameter type `{}` is not in the subset", p.ty.render()),
                ));
                Type::Int
            });
            params.push(Param {
                name: p.name.clone(),
                ty,
            });
            cx.locals.insert(p.name.clone());
        }
        let ret = match &m.ret {
            JType::Void => None,
            ty => match cx.scalar_type(ty) {
                Some(t) => Some(t),
                None => {
                    cx.diags.push(FrontDiag::new(
                        Phase::Lower,
                        m.name_span,
                        format!("return type `{}` is not in the subset", ty.render()),
                    ));
                    None
                }
            },
        };
        let mut path = Vec::new();
        let body = cx.lower_block(&m.name, &m.body, &mut path, 0);
        component.methods.push(Method {
            name: m.name.clone(),
            params,
            ret,
            synchronized: m.synchronized,
            body,
        });
    }

    Lowered {
        component,
        map: cx.map,
        diags: cx.diags,
    }
}

fn default_init(ty: Type) -> Expr {
    match ty {
        Type::Int => Expr::Int(0),
        Type::Bool => Expr::Bool(false),
        Type::Str => Expr::Str(String::new()),
    }
}

struct Lower {
    map: LowerMap,
    diags: Vec<FrontDiag>,
    locks: HashSet<String>,
    fields: HashSet<String>,
    /// Parameters and locals of the method currently being lowered.
    locals: HashSet<String>,
}

impl Lower {
    fn scalar_type(&self, ty: &JType) -> Option<Type> {
        match ty {
            JType::Int => Some(Type::Int),
            JType::Bool => Some(Type::Bool),
            JType::Str => Some(Type::Str),
            _ => None,
        }
    }

    fn lock_ref(&mut self, recv: &Receiver, span: Span) -> LockRef {
        match recv {
            Receiver::This => LockRef::This,
            Receiver::Name(n) => {
                if !self.locks.contains(n) {
                    self.diags.push(
                        FrontDiag::new(
                            Phase::Lower,
                            span,
                            format!("`{n}` is not a declared lock object"),
                        )
                        .with_help(format!(
                            "declare it as `private final Object {n} = new Object();`"
                        )),
                    );
                }
                LockRef::Named(n.clone())
            }
        }
    }

    /// Lower a statement list. `path` is the prefix addressing this block;
    /// `else_offset` is [`ELSE_OFFSET`] when the block is an else-branch
    /// (the MIR's statement-path convention), 0 otherwise.
    fn lower_block(
        &mut self,
        method: &str,
        stmts: &[JStmt],
        path: &mut Vec<usize>,
        else_offset: usize,
    ) -> Block {
        let mut out = Block::new();
        for s in stmts {
            let idx = out.len() + else_offset;
            path.push(idx);
            if let Some(lowered) = self.lower_stmt(method, s, path) {
                self.map
                    .stmts
                    .insert((method.to_string(), path.clone()), s.span);
                out.push(lowered);
            }
            path.pop();
        }
        out
    }

    fn lower_stmt(&mut self, method: &str, s: &JStmt, path: &mut Vec<usize>) -> Option<Stmt> {
        Some(match &s.kind {
            JStmtKind::Empty => return None,
            JStmtKind::While { cond, body } => Stmt::While {
                cond: self.lower_expr(cond),
                body: self.lower_block(method, body, path, 0),
            },
            JStmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => Stmt::If {
                cond: self.lower_expr(cond),
                then_branch: self.lower_block(method, then_branch, path, 0),
                else_branch: self.lower_block(method, else_branch, path, ELSE_OFFSET),
            },
            JStmtKind::Synchronized {
                recv,
                recv_span,
                body,
            } => Stmt::Synchronized {
                lock: self.lock_ref(recv, *recv_span),
                body: self.lower_block(method, body, path, 0),
            },
            JStmtKind::Wait { recv } => Stmt::Wait {
                lock: self.lock_ref(recv, s.span),
            },
            JStmtKind::Notify { recv } => Stmt::Notify {
                lock: self.lock_ref(recv, s.span),
            },
            JStmtKind::NotifyAll { recv } => Stmt::NotifyAll {
                lock: self.lock_ref(recv, s.span),
            },
            JStmtKind::Assign {
                target,
                explicit_this,
                target_span,
                value,
            } => {
                let lv = if *explicit_this {
                    LValue::Field(target.clone())
                } else if self.locals.contains(target) {
                    LValue::Local(target.clone())
                } else if self.fields.contains(target) {
                    LValue::Field(target.clone())
                } else {
                    self.diags.push(FrontDiag::new(
                        Phase::Lower,
                        *target_span,
                        format!("assignment to unresolved name `{target}`"),
                    ));
                    LValue::Local(target.clone())
                };
                Stmt::Assign {
                    target: lv,
                    value: self.lower_expr(value),
                }
            }
            JStmtKind::Local {
                name,
                ty,
                name_span,
                init,
            } => {
                let ty = self.scalar_type(ty).unwrap_or_else(|| {
                    self.diags.push(FrontDiag::new(
                        Phase::Lower,
                        *name_span,
                        format!("local type `{}` is not in the subset", ty.render()),
                    ));
                    Type::Int
                });
                let init = self.lower_expr(init);
                self.locals.insert(name.clone());
                Stmt::Local {
                    name: name.clone(),
                    ty,
                    init,
                }
            }
            JStmtKind::Return(e) => Stmt::Return(e.as_ref().map(|e| self.lower_expr(e))),
            // An unmodeled call moves no monitor state: a no-op in the IR.
            JStmtKind::ExprStmt(_) => Stmt::Skip,
        })
    }

    fn lower_expr(&mut self, e: &JExpr) -> Expr {
        match &e.kind {
            JExprKind::Int(n) => Expr::Int(*n),
            JExprKind::Bool(b) => Expr::Bool(*b),
            JExprKind::Str(s) => Expr::Str(s.clone()),
            JExprKind::Ident(n) => {
                if self.locals.contains(n) {
                    Expr::Var(n.clone())
                } else if self.fields.contains(n) {
                    Expr::Field(n.clone())
                } else {
                    self.diags.push(FrontDiag::new(
                        Phase::Lower,
                        e.span,
                        format!("unresolved name `{n}`"),
                    ));
                    Expr::Var(n.clone())
                }
            }
            JExprKind::FieldAccess(n) => {
                if !self.fields.contains(n) && !self.locks.contains(n) {
                    self.diags.push(FrontDiag::new(
                        Phase::Lower,
                        e.span,
                        format!("`this.{n}` does not name a field"),
                    ));
                }
                Expr::Field(n.clone())
            }
            JExprKind::Unary(op, inner) => {
                let op = match op {
                    UnOpKind::Neg => UnOp::Neg,
                    UnOpKind::Not => UnOp::Not,
                };
                Expr::Unary(op, Box::new(self.lower_expr(inner)))
            }
            JExprKind::Binary(op, a, b) => {
                let op = match op {
                    BinOpKind::Add => BinOp::Add,
                    BinOpKind::Sub => BinOp::Sub,
                    BinOpKind::Mul => BinOp::Mul,
                    BinOpKind::Div => BinOp::Div,
                    BinOpKind::Mod => BinOp::Mod,
                    BinOpKind::Eq => BinOp::Eq,
                    BinOpKind::Ne => BinOp::Ne,
                    BinOpKind::Lt => BinOp::Lt,
                    BinOpKind::Le => BinOp::Le,
                    BinOpKind::Gt => BinOp::Gt,
                    BinOpKind::Ge => BinOp::Ge,
                    BinOpKind::And => BinOp::And,
                    BinOpKind::Or => BinOp::Or,
                };
                Expr::Binary(
                    op,
                    Box::new(self.lower_expr(a)),
                    Box::new(self.lower_expr(b)),
                )
            }
            JExprKind::Call { recv, name, args } => self.lower_call(e.span, recv, name, args),
        }
    }

    /// String builtins arrive in Java method syntax (`s.length()`,
    /// `s.charAt(i)`, `s.concat(t)`, `toStr(n)`); everything else is
    /// outside the subset in expression position (as a statement it would
    /// have become `Skip`).
    fn lower_call(
        &mut self,
        span: Span,
        recv: &Option<Box<JExpr>>,
        name: &str,
        args: &[JExpr],
    ) -> Expr {
        let builtin = match (recv.is_some(), name) {
            (true, "length") => Some(Builtin::Len),
            (true, "charAt") => Some(Builtin::CharAt),
            (true, "concat") => Some(Builtin::Concat),
            (false, _) => Builtin::by_name(name),
            _ => None,
        };
        match builtin {
            Some(b) => {
                let mut lowered = Vec::new();
                if let Some(r) = recv {
                    lowered.push(self.lower_expr(r));
                }
                lowered.extend(args.iter().map(|a| self.lower_expr(a)));
                Expr::Call(b, lowered)
            }
            None => {
                self.diags.push(
                    FrontDiag::new(
                        Phase::Lower,
                        span,
                        format!("call to `{name}` in expression position is not in the subset"),
                    )
                    .with_help("only length()/charAt()/concat() and toStr() are modeled"),
                );
                Expr::Int(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lower_src(src: &str) -> Lowered {
        let (unit, diags) = parse(src);
        assert!(diags.is_empty(), "{diags:?}");
        lower_class(&unit.classes[0])
    }

    #[test]
    fn fields_locks_and_sync_modifier() {
        let l = lower_src(
            "class C { private final Object lock = new Object(); \
             private int n = 3; private boolean ok = true; \
             public synchronized void m() { n = n + 1; } }",
        );
        assert!(l.diags.is_empty(), "{:?}", l.diags);
        assert_eq!(l.component.locks, vec!["lock".to_string()]);
        assert_eq!(l.component.fields.len(), 2);
        assert_eq!(l.component.fields[0].init, Expr::Int(3));
        assert!(l.component.methods[0].synchronized);
    }

    #[test]
    fn wait_in_while_lowers_with_paths() {
        let src = "class W { boolean ready = false; \
             synchronized void await() { while (!ready) { wait(); } ready = false; } }";
        let l = lower_src(src);
        assert!(l.diags.is_empty(), "{:?}", l.diags);
        let m = &l.component.methods[0];
        assert!(matches!(m.body[0], Stmt::While { .. }));
        // The wait statement at path [0, 0] maps back to its source span.
        let span = l.map.stmts[&("await".to_string(), vec![0, 0])];
        assert_eq!(&src[span.lo as usize..span.hi as usize], "wait();");
    }

    #[test]
    fn else_branch_paths_use_the_offset_convention() {
        let src = "class E { int n = 0; synchronized void m(boolean b) { \
             if (b) { n = 1; } else { n = 2; } } }";
        let l = lower_src(src);
        assert!(l.diags.is_empty(), "{:?}", l.diags);
        let then_span = l.map.stmts[&("m".to_string(), vec![0, 0])];
        let else_span = l.map.stmts[&("m".to_string(), vec![0, ELSE_OFFSET])];
        assert_eq!(&src[then_span.lo as usize..then_span.hi as usize], "n = 1;");
        assert_eq!(&src[else_span.lo as usize..else_span.hi as usize], "n = 2;");
    }

    #[test]
    fn unmodeled_call_statement_is_skip_not_error() {
        let l = lower_src("class U { void m() { log(); } }");
        assert!(l.diags.is_empty(), "{:?}", l.diags);
        assert!(matches!(l.component.methods[0].body[0], Stmt::Skip));
    }

    #[test]
    fn unresolved_names_report_but_stay_total() {
        let l = lower_src("class B { void m() { x = 1; } }");
        assert_eq!(l.diags.len(), 1);
        assert!(l.diags[0].message.contains("unresolved"));
        assert_eq!(l.component.methods.len(), 1);
    }

    #[test]
    fn constructors_are_dropped() {
        let l = lower_src("class K { int n = 0; K() { n = 5; } synchronized int get() { return n; } }");
        assert!(l.diags.is_empty(), "{:?}", l.diags);
        assert_eq!(l.component.methods.len(), 1);
        assert_eq!(l.component.methods[0].name, "get");
    }

    #[test]
    fn string_builtins_map_to_ir_calls() {
        let l = lower_src(
            "class S { String s = \"ab\"; synchronized int size() { return s.length(); } }",
        );
        assert!(l.diags.is_empty(), "{:?}", l.diags);
        match &l.component.methods[0].body[0] {
            Stmt::Return(Some(Expr::Call(Builtin::Len, args))) => {
                assert_eq!(args[0], Expr::Field("s".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn resolve_falls_back_stmt_to_method_to_class() {
        let l = lower_src("class F { synchronized void m() { return; } }");
        let stmt = l.map.resolve("m", Some(&[0]));
        let method = l.map.resolve("m", Some(&[99]));
        let class = l.map.resolve("<F>", None);
        assert_ne!(stmt, method);
        assert_eq!(method, l.map.methods["m"]);
        assert_eq!(class, l.map.class_span);
    }
}
