//! Test-suite construction: the CoFG-directed greedy suite and the
//! undirected random baseline.
//!
//! The directed suite targets three goal families. Arc coverage alone (the
//! CoFG criterion of Section 6) exercises every concurrency primitive, but
//! the paper's companion work (Harvey & Strooper 2001, cited as [13])
//! found it must be extended with "consideration for the number and type of
//! processes suspended inside the monitor" and "interesting state and
//! parameter values". The suite therefore also pursues:
//!
//! * **waiter plurality** — reach ≥ 2 threads simultaneously suspended in
//!   a wait set (the precondition of every lost-notification failure),
//! * **post-wake observation** — for every method containing a `wait`, some
//!   path where, after its thread is woken, another thread completes a
//!   value-returning call (so state corrupted by a bad wake-up is actually
//!   *observed* by the oracle), and
//! * **notify effectiveness** — every `notify`/`notifyAll` site is seen, in
//!   some path, actually waking a waiter (otherwise a suite can pass with a
//!   notification site whose removal is never noticed, because another
//!   method's notification shadows it), and
//! * **mixed waiters** — threads of *different* methods suspended in the
//!   same wait set simultaneously ([13]'s "type of processes suspended
//!   inside the monitor"); this is the precondition under which `notify`
//!   can wake the wrong kind of waiter. Unachievable for some components
//!   (e.g. the producer–consumer, whose guards are mutually exclusive);
//!   the suite builder pursues it opportunistically.

use std::collections::{BTreeSet, HashMap};

use jcc_cofg::build_component_cofgs;
use jcc_cofg::coverage::CoverageTracker;
use jcc_model::ast::Stmt;
use jcc_model::Component;
use jcc_petri::{Parallelism, Transition};
use jcc_vm::trace::{apply_trace, TraceEvent, TraceEventKind};
use jcc_vm::{compile, explore_observed, CompiledComponent, ExploreConfig, Vm};

use crate::scenario::{sample_scenarios, Scenario, ScenarioSpace};

/// The extra-goal tracker ([13]-style criteria beyond arc coverage).
#[derive(Debug, Clone)]
pub struct SuiteGoals {
    /// Methods that contain a `wait`.
    wait_methods: BTreeSet<String>,
    /// Methods that return a value (potential observers).
    value_methods: BTreeSet<String>,
    /// All notify/notifyAll sites: (method, statement path).
    notify_sites: BTreeSet<(String, Vec<usize>)>,
    /// Seen ≥2 simultaneous waiters on one lock?
    pub two_waiters_seen: bool,
    /// Wait-methods for which the post-wake-observation goal is met.
    pub observed_after_wake: BTreeSet<String>,
    /// Notify sites observed actually waking at least one waiter.
    pub effective_notifies: BTreeSet<(String, Vec<usize>)>,
    /// Seen two threads of different methods waiting on one lock at once?
    pub mixed_waiters_seen: bool,
    /// Whether the component has ≥ 2 distinct wait-methods (otherwise the
    /// mixed-waiter goal is vacuous).
    mixed_possible: bool,
}

impl SuiteGoals {
    /// Set up goals for a component.
    pub fn new(component: &Component) -> Self {
        let mut wait_methods = BTreeSet::new();
        let mut value_methods = BTreeSet::new();
        let mut notify_sites = BTreeSet::new();
        for m in &component.methods {
            let mut has_wait = false;
            let mut path = Vec::new();
            collect_sites(&m.body, &mut path, &mut |stmt, path| match stmt {
                Stmt::Wait { .. } => has_wait = true,
                Stmt::Notify { .. } | Stmt::NotifyAll { .. } => {
                    notify_sites.insert((m.name.clone(), path.to_vec()));
                }
                _ => {}
            });
            if has_wait {
                wait_methods.insert(m.name.clone());
            }
            if m.ret.is_some() {
                value_methods.insert(m.name.clone());
            }
        }
        // The notify-effectiveness goal is only meaningful when someone can
        // wait at all.
        if wait_methods.is_empty() {
            notify_sites.clear();
        }
        let mixed_possible = wait_methods.len() >= 2;
        SuiteGoals {
            wait_methods,
            value_methods,
            notify_sites,
            two_waiters_seen: false,
            observed_after_wake: BTreeSet::new(),
            effective_notifies: BTreeSet::new(),
            mixed_waiters_seen: false,
            mixed_possible,
        }
    }

    /// True when every achievable goal is met. With no wait methods there
    /// is nothing to pursue; with no value-returning methods the
    /// observation goal is vacuous.
    pub fn complete(&self) -> bool {
        let plurality_ok = self.two_waiters_seen || self.wait_methods.is_empty();
        let observe_ok = self.value_methods.is_empty()
            || self
                .wait_methods
                .iter()
                .all(|m| self.observed_after_wake.contains(m));
        let notify_ok = self
            .notify_sites
            .iter()
            .all(|s| self.effective_notifies.contains(s));
        plurality_ok && observe_ok && notify_ok
    }

    /// Number of unmet goals (for greedy comparison).
    pub fn unmet(&self) -> usize {
        let mut n = 0;
        if !self.two_waiters_seen && !self.wait_methods.is_empty() {
            n += 1;
        }
        if !self.value_methods.is_empty() {
            n += self
                .wait_methods
                .iter()
                .filter(|m| !self.observed_after_wake.contains(*m))
                .count();
        }
        n += self
            .notify_sites
            .iter()
            .filter(|s| !self.effective_notifies.contains(*s))
            .count();
        if self.mixed_possible && !self.mixed_waiters_seen {
            n += 1;
        }
        n
    }

    /// A goal tracker with nothing to pursue (arc-only ablation).
    pub fn vacuous() -> Self {
        SuiteGoals {
            wait_methods: BTreeSet::new(),
            value_methods: BTreeSet::new(),
            notify_sites: BTreeSet::new(),
            two_waiters_seen: false,
            observed_after_wake: BTreeSet::new(),
            effective_notifies: BTreeSet::new(),
            mixed_waiters_seen: false,
            mixed_possible: false,
        }
    }

    /// Fold one path's trace into the goals.
    pub fn observe_trace(&mut self, trace: &[TraceEvent]) {
        // Current method (and its start index) per thread; waiting counts
        // per lock; last concurrency site per thread.
        let mut current: HashMap<usize, (String, usize)> = HashMap::new();
        let mut waiting: HashMap<usize, Vec<(usize, String)>> = HashMap::new();
        let mut last_site: HashMap<usize, (String, Vec<usize>)> = HashMap::new();
        // Wake positions: (trace index, method) of each T5.
        let mut wakes: Vec<(usize, String)> = Vec::new();
        for (i, e) in trace.iter().enumerate() {
            match &e.kind {
                TraceEventKind::MethodStart { method } => {
                    current.insert(e.thread, (method.clone(), i));
                }
                TraceEventKind::MethodEnd { method } => {
                    let started = current.remove(&e.thread).map(|(_, s)| s).unwrap_or(0);
                    // Post-wake observation: a value-returning call by one
                    // thread *began and completed* after another thread's
                    // wake-up — only such a call can observe state the woken
                    // thread corrupted.
                    if self.value_methods.contains(method) {
                        for (wi, wmethod) in &wakes {
                            if *wi < started
                                && self.wait_methods.contains(wmethod)
                                && trace[*wi].thread != e.thread
                            {
                                self.observed_after_wake.insert(wmethod.clone());
                            }
                        }
                    }
                }
                TraceEventKind::Site { method, path, .. } => {
                    last_site.insert(e.thread, (method.clone(), path.clone()));
                }
                TraceEventKind::NotifyIssued { waiters, .. }
                    if *waiters > 0 => {
                        if let Some((m, p)) = last_site.get(&e.thread) {
                            let key = (m.clone(), p.clone());
                            if self.notify_sites.contains(&key) {
                                self.effective_notifies.insert(key);
                            }
                        }
                    }
                TraceEventKind::Transition { t, lock } => match t {
                    Transition::T3 => {
                        let method = current
                            .get(&e.thread)
                            .map(|(m, _)| m.clone())
                            .unwrap_or_default();
                        let set = waiting.entry(*lock).or_default();
                        set.push((e.thread, method));
                        if set.len() >= 2 {
                            self.two_waiters_seen = true;
                            if set.iter().any(|(_, m)| *m != set[0].1) {
                                self.mixed_waiters_seen = true;
                            }
                        }
                    }
                    Transition::T5 => {
                        if let Some(set) = waiting.get_mut(lock) {
                            if let Some(pos) =
                                set.iter().position(|(t, _)| *t == e.thread)
                            {
                                set.remove(pos);
                            }
                        }
                        if let Some((method, _)) = current.get(&e.thread) {
                            wakes.push((i, method.clone()));
                        }
                    }
                    _ => {}
                },
                _ => {}
            }
        }
    }
}

/// Walk statements with paths (same convention as `jcc_model::ast`).
fn collect_sites(
    block: &[Stmt],
    path: &mut Vec<usize>,
    f: &mut impl FnMut(&Stmt, &[usize]),
) {
    for (i, stmt) in block.iter().enumerate() {
        path.push(i);
        f(stmt, path);
        match stmt {
            Stmt::While { body, .. } | Stmt::Synchronized { body, .. } => {
                collect_sites(body, path, f)
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_sites(then_branch, path, f);
                for (j, s) in else_branch.iter().enumerate() {
                    path.push(jcc_model::ast::ELSE_OFFSET + j);
                    f(s, path);
                    if let Stmt::While { body, .. } | Stmt::Synchronized { body, .. } = s {
                        collect_sites(body, path, f);
                    }
                    path.pop();
                }
            }
            _ => {}
        }
        path.pop();
    }
}

/// A constructed test suite with its achieved coverage.
#[derive(Debug)]
pub struct CoverageSuite {
    /// The selected scenarios, in selection order.
    pub scenarios: Vec<Scenario>,
    /// Accumulated CoFG coverage of the suite (union over all schedules of
    /// each scenario for the directed suite; per sampled schedule for the
    /// random baseline).
    pub coverage: CoverageTracker,
    /// State of the [13]-style extra goals after construction.
    pub goals: SuiteGoals,
    /// Scenarios examined before the suite was complete (selection cost).
    pub candidates_examined: usize,
}

impl CoverageSuite {
    /// Fraction of CoFG arcs covered.
    pub fn coverage_ratio(&self) -> f64 {
        self.coverage.ratio()
    }

    /// Arc coverage complete *and* all extra goals met.
    pub fn complete(&self) -> bool {
        self.coverage.complete() && self.goals.complete()
    }
}

/// Configuration for greedy suite construction.
#[derive(Debug, Clone)]
pub struct GreedyConfig {
    /// Seed for candidate sampling.
    pub seed: u64,
    /// Candidates sampled beyond the systematic two-thread seed set.
    pub random_candidates: usize,
    /// Exploration limits used to evaluate a candidate's coverage.
    pub explore: ExploreConfig,
    /// Pursue the [13]-style extra goals beyond arc coverage. Disable for
    /// the arc-only ablation (experiment E9).
    pub extra_goals: bool,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig {
            seed: 42,
            random_candidates: 60,
            explore: ExploreConfig {
                max_states: 30_000,
                max_depth: 800,
                // Candidate evaluation stays on the caller's thread; the
                // mutation study parallelises across cells instead.
                parallelism: Parallelism::sequential(),
                ..ExploreConfig::default()
            },
            extra_goals: true,
        }
    }
}

/// Build a CoFG-directed suite: candidates are tried in order (first the
/// systematic 2- and 3-thread single-call scenarios, then random samples);
/// a candidate joins the suite iff exhaustive schedule exploration shows it
/// covers a CoFG arc — or meets an extra goal — the suite has not yet.
/// Construction stops when arcs and goals are complete or candidates run
/// out.
pub fn greedy_cover_suite(
    component: &Component,
    space: &ScenarioSpace,
    config: &GreedyConfig,
) -> CoverageSuite {
    let compiled = compile(component).expect("component compiles");
    let cofgs = build_component_cofgs(component);
    let mut coverage = CoverageTracker::new(cofgs.clone());
    let mut goals = if config.extra_goals {
        SuiteGoals::new(component)
    } else {
        SuiteGoals::vacuous()
    };

    let mut candidates: Vec<Scenario> = Vec::new();
    candidates.extend(crate::scenario::single_session_scenarios(space, 2));
    candidates.extend(crate::scenario::single_session_scenarios(space, 3));
    candidates.extend(sample_scenarios(space, config.seed, config.random_candidates));

    let mut suite = Vec::new();
    let mut examined = 0;
    for scenario in candidates {
        // Stop only when nothing is left to pursue — including the
        // opportunistic mixed-waiter goal (unmet() counts it; for
        // components where it is unachievable the loop simply examines
        // every candidate once).
        if coverage.complete() && goals.unmet() == 0 {
            break;
        }
        examined += 1;
        let mut candidate_cov = CoverageTracker::new(cofgs.clone());
        let mut candidate_goals = goals.clone();
        let vm = Vm::new(compiled.clone(), scenario.clone());
        let _ = explore_observed(vm, &config.explore, |vm| {
            candidate_cov.reset_threads();
            apply_trace(vm.trace(), &mut candidate_cov);
            candidate_goals.observe_trace(vm.trace());
        });
        let mut merged = coverage.clone();
        merged.merge(&candidate_cov);
        let adds_arc = merged.covered_arcs() > coverage.covered_arcs();
        let adds_goal = candidate_goals.unmet() < goals.unmet();
        if adds_arc || adds_goal {
            coverage = merged;
            goals = candidate_goals;
            suite.push(scenario);
        }
    }
    CoverageSuite {
        scenarios: suite,
        coverage,
        goals,
        candidates_examined: examined,
    }
}

/// Build the undirected baseline: `count` randomly sampled scenarios, with
/// coverage measured from a single random schedule each (what a tester
/// running the component without schedule control would see).
pub fn random_suite(
    component: &Component,
    space: &ScenarioSpace,
    seed: u64,
    count: usize,
) -> CoverageSuite {
    let compiled: CompiledComponent = compile(component).expect("component compiles");
    let cofgs = build_component_cofgs(component);
    let mut coverage = CoverageTracker::new(cofgs);
    let mut goals = SuiteGoals::new(component);
    let scenarios = sample_scenarios(space, seed, count);
    for (i, scenario) in scenarios.iter().enumerate() {
        let mut vm = Vm::new(compiled.clone(), scenario.clone());
        let out = vm.run(&jcc_vm::RunConfig {
            scheduler: jcc_vm::Scheduler::Random(seed.wrapping_add(i as u64)),
            max_steps: 20_000,
        });
        coverage.reset_threads();
        apply_trace(&out.trace, &mut coverage);
        goals.observe_trace(&out.trace);
    }
    CoverageSuite {
        scenarios,
        coverage,
        goals,
        candidates_examined: count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_model::examples;
    use jcc_vm::{CallSpec, Value};

    fn pc_space() -> ScenarioSpace {
        ScenarioSpace::new(vec![
            CallSpec::new("receive", vec![]),
            CallSpec::new("send", vec![Value::Str("a".into())]),
            CallSpec::new("send", vec![Value::Str("ab".into())]),
        ])
    }

    #[test]
    fn greedy_suite_reaches_full_coverage_on_producer_consumer() {
        let c = examples::producer_consumer();
        let suite = greedy_cover_suite(&c, &pc_space(), &GreedyConfig::default());
        assert!(
            suite.coverage.complete(),
            "uncovered: {:?}",
            suite.coverage.uncovered()
        );
        assert!(suite.goals.two_waiters_seen);
        // Post-wake observation achievable for both methods.
        assert!(
            suite.goals.complete(),
            "unmet goals: {:?}",
            suite.goals
        );
        // The suite is small — a handful of scenarios suffice.
        assert!(suite.scenarios.len() <= 10, "{}", suite.scenarios.len());
    }

    #[test]
    fn greedy_suite_deterministic() {
        let c = examples::producer_consumer();
        let a = greedy_cover_suite(&c, &pc_space(), &GreedyConfig::default());
        let b = greedy_cover_suite(&c, &pc_space(), &GreedyConfig::default());
        assert_eq!(a.scenarios, b.scenarios);
    }

    #[test]
    fn random_suite_coverage_is_no_better() {
        let c = examples::producer_consumer();
        let greedy = greedy_cover_suite(&c, &pc_space(), &GreedyConfig::default());
        let random = random_suite(&c, &pc_space(), 7, greedy.scenarios.len());
        assert!(random.coverage_ratio() <= greedy.coverage_ratio() + 1e-9);
    }

    #[test]
    fn bounded_buffer_suite_covers() {
        let c = examples::bounded_buffer();
        let space = ScenarioSpace::new(vec![
            CallSpec::new("put", vec![Value::Int(1)]),
            CallSpec::new("put", vec![Value::Int(2)]),
            CallSpec::new("take", vec![]),
        ]);
        let suite = greedy_cover_suite(&c, &space, &GreedyConfig::default());
        assert!(
            suite.coverage.complete(),
            "uncovered: {:?}",
            suite.coverage.uncovered()
        );
    }

    #[test]
    fn goals_track_waiter_plurality() {
        let c = examples::producer_consumer();
        let mut goals = SuiteGoals::new(&c);
        assert!(!goals.two_waiters_seen);
        assert!(!goals.complete());
        // Two receives, no send: both threads wait — plurality reached.
        let compiled = compile(&c).unwrap();
        let mut vm = Vm::new(
            compiled,
            vec![
                jcc_vm::ThreadSpec {
                    name: "a".into(),
                    calls: vec![CallSpec::new("receive", vec![])],
                },
                jcc_vm::ThreadSpec {
                    name: "b".into(),
                    calls: vec![CallSpec::new("receive", vec![])],
                },
            ],
        );
        let out = vm.run(&jcc_vm::RunConfig::default());
        goals.observe_trace(&out.trace);
        assert!(goals.two_waiters_seen);
    }

    #[test]
    fn goals_vacuous_without_waits() {
        let c = examples::racy_counter();
        let goals = SuiteGoals::new(&c);
        assert!(goals.complete());
        assert_eq!(goals.unmet(), 0);
    }
}
