//! The canonical scenario-space registry for the evaluation corpus.
//!
//! One place — instead of per-harness copies — mapping every corpus
//! component (the five seed monitors *and* the component zoo) to the
//! [`ScenarioSpace`] its directed suites are built from. The E5 mutation
//! study, the E10 static-analysis study and the parallel-determinism
//! stress tests all look scenarios up here, so adding a zoo entry is one
//! edit, not three.
//!
//! Spaces are behavioural choices, not boilerplate: session templates pair
//! acquire-like calls with their releases (a thread that `lockWrite`s and
//! never unlocks would drown every signature in deadlocks), keep at most
//! one read-lock upgrader (two upgraders deadlock *correctly*), and give
//! blocking methods a counterpart that can unblock them.

use jcc_vm::{CallSpec, Value};

use crate::scenario::ScenarioSpace;

fn call(method: &str) -> CallSpec {
    CallSpec::new(method, vec![])
}

fn call_i(method: &str, v: i64) -> CallSpec {
    CallSpec::new(method, vec![Value::Int(v)])
}

/// The registered component names, in corpus order (seed five, then zoo).
pub fn registered() -> Vec<&'static str> {
    vec![
        "ProducerConsumer",
        "BoundedBuffer",
        "Semaphore",
        "ReadersWriters",
        "Barrier",
        "ThreadPool",
        "FutureCell",
        "CyclicBarrier",
        "FairSemaphore",
        "BargingSemaphore",
        "ReadWriteLock",
        "Exchanger",
        "BoundedStack",
    ]
}

/// The scenario space for a corpus component, or `None` for components
/// outside the registry (specimens like `LockOrder` are analyzed
/// statically, never scheduled).
pub fn space_for(name: &str) -> Option<ScenarioSpace> {
    let space = match name {
        "ProducerConsumer" => ScenarioSpace::new(vec![
            call("receive"),
            CallSpec::new("send", vec![Value::Str("a".into())]),
            CallSpec::new("send", vec![Value::Str("ab".into())]),
        ]),
        "BoundedBuffer" => ScenarioSpace::new(vec![
            call_i("put", 1),
            call_i("put", 2),
            call("take"),
        ]),
        "Semaphore" => ScenarioSpace::new(vec![
            call_i("init", 1),
            call("acquire"),
            call("release"),
        ]),
        "ReadersWriters" => ScenarioSpace::of_sessions(vec![
            vec![call("startRead"), call("endRead")],
            vec![call("startWrite"), call("endWrite")],
        ]),
        "Barrier" => ScenarioSpace::new(vec![call_i("init", 2), call("await")]),
        "ThreadPool" => ScenarioSpace::new(vec![
            call("submit"),
            call("runTask"),
            call("shutdownNow"),
        ]),
        "FutureCell" => ScenarioSpace::new(vec![
            call("get"),
            call_i("complete", 1),
            call("isDone"),
        ]),
        "CyclicBarrier" => {
            ScenarioSpace::new(vec![call("await"), call("reset"), call("repair")])
        }
        "FairSemaphore" => ScenarioSpace::of_sessions(vec![
            vec![call("acquire"), call("release")],
            vec![call("release")],
        ]),
        "BargingSemaphore" => ScenarioSpace::of_sessions(vec![
            vec![call("acquire"), call("release")],
            vec![call("tryAcquire")],
            vec![call("release")],
        ]),
        "ReadWriteLock" => ScenarioSpace::of_sessions(vec![
            vec![call("lockRead"), call("unlockRead")],
            vec![call("lockWrite"), call("unlockWrite")],
            vec![call("lockWrite"), call("downgrade"), call("unlockRead")],
        ]),
        "Exchanger" => {
            ScenarioSpace::new(vec![call_i("exchange", 1), call_i("exchange", 2)])
        }
        "BoundedStack" => ScenarioSpace::new(vec![
            call_i("push", 1),
            call_i("push", 2),
            call("pop"),
        ]),
        _ => return None,
    };
    Some(space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{greedy_cover_suite, GreedyConfig};

    use jcc_components::zoo::full_corpus;

    #[test]
    fn every_full_corpus_component_is_registered() {
        let names = registered();
        assert_eq!(names.len(), 13);
        for (name, _) in full_corpus() {
            assert!(
                names.contains(&name),
                "{name} missing from the scenario registry"
            );
            assert!(space_for(name).is_some(), "{name} has no scenario space");
        }
    }

    #[test]
    fn registry_order_matches_full_corpus_order() {
        let corpus_names: Vec<&str> = full_corpus().iter().map(|(n, _)| *n).collect();
        assert_eq!(registered(), corpus_names);
    }

    #[test]
    fn unknown_components_resolve_to_none() {
        assert!(space_for("LockOrder").is_none());
        assert!(space_for("RacyCounter").is_none());
    }

    #[test]
    fn every_registered_space_names_real_methods() {
        for (name, component) in full_corpus() {
            let space = space_for(name).unwrap();
            for template in &space.templates {
                for call in template {
                    assert!(
                        component.method(&call.method).is_some(),
                        "{name}: scenario calls unknown method {}",
                        call.method
                    );
                }
            }
        }
    }

    #[test]
    fn zoo_spaces_yield_nonempty_directed_suites() {
        for name in ["ThreadPool", "FutureCell", "BoundedStack"] {
            let component = full_corpus()
                .into_iter()
                .find(|(n, _)| *n == name)
                .unwrap()
                .1;
            let space = space_for(name).unwrap();
            let suite = greedy_cover_suite(&component, &space, &GreedyConfig::default());
            assert!(
                !suite.scenarios.is_empty(),
                "{name}: greedy suite came back empty"
            );
            assert!(
                suite.coverage.covered_arcs() > 0,
                "{name}: suite covers no arcs"
            );
        }
    }
}
