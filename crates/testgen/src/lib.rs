//! # jcc-testgen — test-sequence generation for CoFG arc coverage
//!
//! Section 6 of the paper adapts Brinch Hansen's four-step monitor-testing
//! recipe: identify per-operation preconditions, construct call sequences
//! exercising each, build test processes, and compare against predicted
//! output. The CoFG makes step 1 systematic — each arc *is* a precondition
//! case (which loop conditions must hold) — and this crate automates steps
//! 2 and 3:
//!
//! * [`scenario`] — the scenario space: call templates combined into
//!   multi-thread test scenarios, sampled deterministically from a seed,
//! * [`corpus`] — the canonical scenario-space registry for every
//!   component of the evaluation corpus (seed monitors and zoo),
//! * [`suite`] — greedy construction of an **arc-coverage suite** (each
//!   added scenario must increase CoFG coverage, verified by exhaustive
//!   schedule exploration) and the **undirected random baseline** the
//!   mutation study compares against,
//! * [`signature`] — behavioural signatures of a run (who completed, what
//!   was returned, how it ended), the oracle for mutation detection,
//! * [`conan`] — export of a scenario as a ConAn-style test script.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conan;
pub mod corpus;
pub mod scenario;
pub mod signature;
pub mod suite;

pub use scenario::{sample_scenarios, Scenario, ScenarioSpace};
pub use signature::{enumerate_signatures, run_signature, Signature};
pub use suite::{greedy_cover_suite, random_suite, CoverageSuite};
