//! Behavioural signatures: the observable outcome of a run, used as the
//! oracle for mutation detection (Brinch Hansen's step 4 — "the output is
//! compared with the predicted output" — with completion information folded
//! in, per the paper's completion-time technique).

use std::collections::BTreeSet;

use jcc_vm::{RunOutcome, Value, Verdict, Vm};

/// How a run ended, abstracted for comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EndState {
    /// All calls completed.
    Completed,
    /// Deadlock (threads waiting and/or blocked forever).
    Deadlock,
    /// A runtime fault.
    Faulted,
    /// Step budget exhausted / livelock.
    NoProgress,
}

/// The observable signature of one run: how it ended, and per thread per
/// call whether the call completed and what it returned. Completion *order*
/// is deliberately excluded (it is schedule noise); completion *fact* and
/// values are the oracle.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signature {
    /// Abstract end state.
    pub end: EndState,
    /// `results[thread][call] = (completed, returned)`.
    pub results: Vec<Vec<(bool, Option<Value>)>>,
}

/// Extract the signature of a run outcome.
pub fn run_signature(outcome: &RunOutcome) -> Signature {
    let end = match &outcome.verdict {
        Verdict::Completed => EndState::Completed,
        Verdict::Deadlock { .. } => EndState::Deadlock,
        Verdict::Faulted { .. } => EndState::Faulted,
        Verdict::StepLimit => EndState::NoProgress,
    };
    let results = outcome
        .results
        .iter()
        .map(|calls| {
            calls
                .iter()
                .map(|c| (!c.suspended(), c.returned.clone()))
                .collect()
        })
        .collect();
    Signature { end, results }
}

/// Limits for signature enumeration.
#[derive(Debug, Clone, Copy)]
pub struct EnumLimits {
    /// Maximum distinct states.
    pub max_states: usize,
    /// Maximum depth of one path.
    pub max_depth: usize,
}

impl Default for EnumLimits {
    fn default() -> Self {
        EnumLimits {
            max_states: 100_000,
            max_depth: 1_500,
        }
    }
}

/// Enumerate the set of signatures reachable under *any* schedule, by
/// depth-first exploration with state deduplication. Paths that close a
/// cycle on themselves contribute a [`EndState::NoProgress`] signature
/// (the system can loop forever there).
///
/// Returns `(signatures, truncated)`.
pub fn enumerate_signatures(vm: Vm, limits: EnumLimits) -> (BTreeSet<Signature>, bool) {
    let mut signatures = BTreeSet::new();
    let mut seen = std::collections::HashSet::new();
    let mut on_path = std::collections::HashSet::new();
    let key0 = vm.state_key();
    seen.insert(key0);
    on_path.insert(key0);
    let mut truncated = false;
    dfs(
        vm,
        0,
        &limits,
        &mut seen,
        &mut on_path,
        &mut signatures,
        &mut truncated,
    );
    (signatures, truncated)
}

fn dfs(
    vm: Vm,
    depth: usize,
    limits: &EnumLimits,
    seen: &mut std::collections::HashSet<u64>,
    on_path: &mut std::collections::HashSet<u64>,
    signatures: &mut BTreeSet<Signature>,
    truncated: &mut bool,
) {
    if let Some(verdict) = vm.current_verdict() {
        signatures.insert(run_signature(&vm.into_outcome(verdict)));
        return;
    }
    if depth >= limits.max_depth {
        *truncated = true;
        return;
    }
    for t in vm.runnable() {
        let mut next = vm.clone();
        next.step(t);
        let key = next.state_key();
        if on_path.contains(&key) {
            // A self-cycle: record the no-progress signature with the
            // current completion picture.
            let mut sig = run_signature(&next.into_outcome(Verdict::StepLimit));
            sig.end = EndState::NoProgress;
            signatures.insert(sig);
            continue;
        }
        if !seen.insert(key) {
            continue;
        }
        if seen.len() >= limits.max_states {
            *truncated = true;
            continue;
        }
        on_path.insert(key);
        dfs(next, depth + 1, limits, seen, on_path, signatures, truncated);
        on_path.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_model::examples;
    use jcc_model::mutate::{apply_mutation, enumerate_mutations, MutationKind};
    use jcc_vm::{compile, CallSpec, RunConfig, ThreadSpec, Vm};

    fn pc_scenario() -> Vec<ThreadSpec> {
        vec![
            ThreadSpec {
                name: "c".into(),
                calls: vec![CallSpec::new("receive", vec![])],
            },
            ThreadSpec {
                name: "p".into(),
                calls: vec![CallSpec::new("send", vec![Value::Str("a".into())])],
            },
        ]
    }

    #[test]
    fn correct_component_single_signature() {
        let c = examples::producer_consumer();
        let vm = Vm::new(compile(&c).unwrap(), pc_scenario());
        let (sigs, truncated) = enumerate_signatures(vm, EnumLimits::default());
        assert!(!truncated);
        // Every schedule completes with the same values: one signature.
        assert_eq!(sigs.len(), 1, "{sigs:?}");
        let sig = sigs.iter().next().unwrap();
        assert_eq!(sig.end, EndState::Completed);
        assert_eq!(sig.results[0][0], (true, Some(Value::Str("a".into()))));
    }

    #[test]
    fn drop_notify_mutant_changes_signature_set() {
        let c = examples::producer_consumer();
        let correct_vm = Vm::new(compile(&c).unwrap(), pc_scenario());
        let (correct_sigs, _) = enumerate_signatures(correct_vm, EnumLimits::default());

        let m = enumerate_mutations(&c)
            .into_iter()
            .find(|m| m.kind == MutationKind::DropNotify && m.method == "send")
            .unwrap();
        let mutant = apply_mutation(&c, &m).unwrap();
        let mutant_vm = Vm::new(compile(&mutant).unwrap(), pc_scenario());
        let (mutant_sigs, _) = enumerate_signatures(mutant_vm, EnumLimits::default());
        assert_ne!(correct_sigs, mutant_sigs);
        assert!(mutant_sigs.iter().any(|s| s.end == EndState::Deadlock));
    }

    #[test]
    fn run_signature_shape() {
        let c = examples::producer_consumer();
        let mut vm = Vm::new(compile(&c).unwrap(), pc_scenario());
        let out = vm.run(&RunConfig::default());
        let sig = run_signature(&out);
        assert_eq!(sig.end, EndState::Completed);
        assert_eq!(sig.results.len(), 2);
        assert_eq!(sig.results[1][0], (true, None)); // send is void
    }

    #[test]
    fn signatures_ignore_completion_order() {
        // Two different schedules of the same scenario produce the same
        // signature even though step counts differ.
        let c = examples::producer_consumer();
        let cc = compile(&c).unwrap();
        let mut vm1 = Vm::new(cc.clone(), pc_scenario());
        let out1 = vm1.run(&RunConfig::default());
        let mut vm2 = Vm::new(cc, pc_scenario());
        let out2 = vm2.run(&RunConfig {
            scheduler: jcc_vm::Scheduler::Random(99),
            max_steps: 20_000,
        });
        assert_eq!(run_signature(&out1), run_signature(&out2));
    }

    #[test]
    fn truncation_flag_set_on_tiny_limits() {
        let c = examples::producer_consumer();
        let vm = Vm::new(compile(&c).unwrap(), pc_scenario());
        let (_, truncated) = enumerate_signatures(
            vm,
            EnumLimits {
                max_states: 100_000,
                max_depth: 2,
            },
        );
        assert!(truncated);
    }
}
