//! The scenario space: multi-thread call arrangements sampled from
//! *session templates* — call sequences that represent one meaningful use
//! of the component (a read session `startRead; endRead`, a single `put`,
//! …). Threads concatenate one or more sessions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use jcc_vm::{CallSpec, ThreadSpec};

/// One session template: the calls a thread performs for one use of the
/// component.
pub type CallSeq = Vec<CallSpec>;

/// A test scenario: the logical threads (with their call sequences) that
/// will exercise the component.
pub type Scenario = Vec<ThreadSpec>;

/// The space scenarios are drawn from.
#[derive(Debug, Clone)]
pub struct ScenarioSpace {
    /// The session templates threads pick from.
    pub templates: Vec<CallSeq>,
    /// Minimum and maximum number of threads.
    pub threads: (usize, usize),
    /// Minimum and maximum sessions per thread.
    pub sessions_per_thread: (usize, usize),
}

impl ScenarioSpace {
    /// A space over single-call session templates, 1–3 threads and 1–3
    /// sessions each.
    pub fn new(calls: Vec<CallSpec>) -> Self {
        ScenarioSpace {
            templates: calls.into_iter().map(|c| vec![c]).collect(),
            threads: (1, 3),
            sessions_per_thread: (1, 3),
        }
    }

    /// A space over multi-call session templates.
    pub fn of_sessions(templates: Vec<CallSeq>) -> Self {
        ScenarioSpace {
            templates,
            threads: (1, 3),
            sessions_per_thread: (1, 2),
        }
    }
}

/// Sample `count` scenarios deterministically from `seed`.
pub fn sample_scenarios(space: &ScenarioSpace, seed: u64, count: usize) -> Vec<Scenario> {
    assert!(
        !space.templates.is_empty(),
        "scenario space needs at least one session template"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| sample_one(space, &mut rng))
        .collect()
}

fn sample_one(space: &ScenarioSpace, rng: &mut StdRng) -> Scenario {
    let n_threads = rng.gen_range(space.threads.0..=space.threads.1);
    (0..n_threads)
        .map(|t| {
            let n_sessions =
                rng.gen_range(space.sessions_per_thread.0..=space.sessions_per_thread.1);
            let calls = (0..n_sessions)
                .flat_map(|_| {
                    space.templates[rng.gen_range(0..space.templates.len())]
                        .iter()
                        .cloned()
                })
                .collect();
            ThreadSpec {
                name: format!("t{t}"),
                calls,
            }
        })
        .collect()
}

/// Systematically enumerate all scenarios with exactly `threads` threads of
/// exactly one session each — the small-scope corner of the space, useful
/// as a deterministic seed set before random sampling.
pub fn single_session_scenarios(space: &ScenarioSpace, threads: usize) -> Vec<Scenario> {
    let k = space.templates.len();
    let total = k.pow(threads as u32);
    (0..total)
        .map(|mut idx| {
            (0..threads)
                .map(|t| {
                    let choice = idx % k;
                    idx /= k;
                    ThreadSpec {
                        name: format!("t{t}"),
                        calls: space.templates[choice].clone(),
                    }
                })
                .collect()
        })
        .collect()
}

/// A short human-readable description of a scenario, e.g.
/// `t0: receive | t1: send("a"), send("b")`.
pub fn describe(scenario: &Scenario) -> String {
    scenario
        .iter()
        .map(|t| {
            let calls = t
                .calls
                .iter()
                .map(|c| {
                    if c.args.is_empty() {
                        c.method.clone()
                    } else {
                        let args = c
                            .args
                            .iter()
                            .map(|a| a.to_string())
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!("{}({args})", c.method)
                    }
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("{}: {calls}", t.name)
        })
        .collect::<Vec<_>>()
        .join(" | ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_vm::Value;

    fn space() -> ScenarioSpace {
        ScenarioSpace::new(vec![
            CallSpec::new("receive", vec![]),
            CallSpec::new("send", vec![Value::Str("a".into())]),
        ])
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = sample_scenarios(&space(), 7, 10);
        let b = sample_scenarios(&space(), 7, 10);
        assert_eq!(a, b);
        let c = sample_scenarios(&space(), 8, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn sampled_scenarios_respect_bounds() {
        let mut sp = space();
        sp.threads = (2, 4);
        sp.sessions_per_thread = (1, 2);
        for s in sample_scenarios(&sp, 3, 50) {
            assert!((2..=4).contains(&s.len()));
            for t in &s {
                assert!((1..=2).contains(&t.calls.len()));
            }
        }
    }

    #[test]
    fn session_templates_keep_their_sequence() {
        let sp = ScenarioSpace::of_sessions(vec![vec![
            CallSpec::new("startRead", vec![]),
            CallSpec::new("endRead", vec![]),
        ]]);
        for s in sample_scenarios(&sp, 1, 10) {
            for t in &s {
                // Calls come in whole sessions: pairs of start/end.
                assert_eq!(t.calls.len() % 2, 0);
                for pair in t.calls.chunks(2) {
                    assert_eq!(pair[0].method, "startRead");
                    assert_eq!(pair[1].method, "endRead");
                }
            }
        }
    }

    #[test]
    fn single_session_enumeration_complete() {
        let scenarios = single_session_scenarios(&space(), 2);
        assert_eq!(scenarios.len(), 4); // 2 templates ^ 2 threads
        let set: std::collections::HashSet<String> =
            scenarios.iter().map(describe).collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn describe_format() {
        let s: Scenario = vec![
            ThreadSpec {
                name: "t0".into(),
                calls: vec![CallSpec::new("receive", vec![])],
            },
            ThreadSpec {
                name: "t1".into(),
                calls: vec![CallSpec::new("send", vec![Value::Str("a".into())])],
            },
        ];
        assert_eq!(describe(&s), "t0: receive | t1: send(\"a\")");
    }

    #[test]
    #[should_panic(expected = "at least one session template")]
    fn empty_template_panics() {
        let _ = sample_scenarios(&ScenarioSpace::new(vec![]), 0, 1);
    }
}
