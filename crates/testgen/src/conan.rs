//! Export of a scenario as a ConAn-style test script.
//!
//! The ConAn tool (Long, Hoffman & Strooper 2001) drives monitor tests from
//! a script of time-stamped calls over the abstract clock. This module
//! renders a scenario in that style — one `#thread` block per logical
//! thread, each call released at its own tick — and builds the matching
//! [`jcc_clock::Schedule`] expectations skeleton.

use std::fmt::Write as _;

use crate::scenario::Scenario;

/// Render a scenario as a ConAn-style script. Threads release their calls
/// one tick apart, in thread order (thread 0 at tick 1, thread 1 at tick 2,
/// …), giving a deterministic textual schedule a tester can edit.
pub fn to_conan_script(component: &str, scenario: &Scenario) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// ConAn-style script for component {component}");
    let _ = writeln!(out, "#monitor {component}");
    for (i, thread) in scenario.iter().enumerate() {
        let _ = writeln!(out, "#thread {}", thread.name);
        let mut tick = i as u64 + 1;
        for call in &thread.calls {
            let args = call
                .args
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "  await({tick}); {}({args});", call.method);
            tick += scenario.len() as u64;
        }
        let _ = writeln!(out, "#end");
    }
    out
}

/// The release tick `to_conan_script` assigns to call `call_idx` of thread
/// `thread_idx` in a scenario with `n_threads` threads.
pub fn release_tick(thread_idx: usize, call_idx: usize, n_threads: usize) -> u64 {
    (thread_idx + 1) as u64 + (call_idx as u64) * n_threads as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_vm::{CallSpec, ThreadSpec, Value};

    fn scenario() -> Scenario {
        vec![
            ThreadSpec {
                name: "consumer".into(),
                calls: vec![
                    CallSpec::new("receive", vec![]),
                    CallSpec::new("receive", vec![]),
                ],
            },
            ThreadSpec {
                name: "producer".into(),
                calls: vec![CallSpec::new("send", vec![Value::Str("ab".into())])],
            },
        ]
    }

    #[test]
    fn script_structure() {
        let script = to_conan_script("ProducerConsumer", &scenario());
        assert!(script.contains("#monitor ProducerConsumer"));
        assert!(script.contains("#thread consumer"));
        assert!(script.contains("#thread producer"));
        assert!(script.contains("await(1); receive();"));
        assert!(script.contains("await(3); receive();"));
        assert!(script.contains("await(2); send(\"ab\");"));
        assert_eq!(script.matches("#end").count(), 2);
    }

    #[test]
    fn release_ticks_interleave_threads() {
        assert_eq!(release_tick(0, 0, 2), 1);
        assert_eq!(release_tick(1, 0, 2), 2);
        assert_eq!(release_tick(0, 1, 2), 3);
        assert_eq!(release_tick(1, 1, 2), 4);
    }
}
