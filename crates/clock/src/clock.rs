//! The abstract clock: `await(t)`, `tick`, `time`.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// The ConAn abstract clock. Cheap to clone (shared handle).
///
/// The clock only moves when [`tick`](AbstractClock::tick) is called —
/// usually by the test driver — so thread wake-up order is controlled by
/// the tester, not the OS scheduler.
#[derive(Clone, Debug, Default)]
pub struct AbstractClock {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    time: Mutex<u64>,
    advanced: Condvar,
}

impl AbstractClock {
    /// A new clock at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of units of time passed since the clock started.
    pub fn time(&self) -> u64 {
        *self.inner.time.lock()
    }

    /// Advance the time by one unit, waking any threads awaiting it.
    /// Returns the new time.
    pub fn tick(&self) -> u64 {
        let mut t = self.inner.time.lock();
        *t += 1;
        self.inner.advanced.notify_all();
        *t
    }

    /// Advance the clock to at least `target` (no-op if already there).
    pub fn tick_to(&self, target: u64) -> u64 {
        let mut t = self.inner.time.lock();
        if *t < target {
            *t = target;
            self.inner.advanced.notify_all();
        }
        *t
    }

    /// Delay the calling thread until the clock reaches `t`.
    pub fn await_time(&self, t: u64) {
        let mut cur = self.inner.time.lock();
        while *cur < t {
            self.inner.advanced.wait(&mut cur);
        }
    }

    /// Like [`await_time`](Self::await_time) but gives up after `timeout`
    /// of real time; returns `true` if the clock reached `t`.
    pub fn await_time_for(&self, t: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut cur = self.inner.time.lock();
        while *cur < t {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            self.inner
                .advanced
                .wait_for(&mut cur, deadline - now);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn starts_at_zero_and_ticks() {
        let c = AbstractClock::new();
        assert_eq!(c.time(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.time(), 2);
    }

    #[test]
    fn tick_to_is_monotone() {
        let c = AbstractClock::new();
        assert_eq!(c.tick_to(5), 5);
        assert_eq!(c.tick_to(3), 5);
        assert_eq!(c.time(), 5);
    }

    #[test]
    fn await_time_released_by_tick() {
        let c = AbstractClock::new();
        let c2 = c.clone();
        let h = thread::spawn(move || {
            c2.await_time(3);
            c2.time()
        });
        // Give the waiter a moment to block, then tick past.
        thread::sleep(Duration::from_millis(10));
        c.tick();
        c.tick();
        c.tick();
        assert!(h.join().unwrap() >= 3);
    }

    #[test]
    fn await_time_already_reached_returns_immediately() {
        let c = AbstractClock::new();
        c.tick_to(10);
        c.await_time(5); // must not block
        assert_eq!(c.time(), 10);
    }

    #[test]
    fn await_time_for_times_out() {
        let c = AbstractClock::new();
        let reached = c.await_time_for(1, Duration::from_millis(20));
        assert!(!reached);
    }

    #[test]
    fn many_waiters_all_released() {
        let c = AbstractClock::new();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let c = c.clone();
                thread::spawn(move || {
                    c.await_time(i % 3 + 1);
                    true
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(10));
        c.tick_to(3);
        for h in handles {
            assert!(h.join().unwrap());
        }
    }
}
