//! The deterministic test driver: Brinch Hansen's test-process construction
//! automated over the abstract clock.
//!
//! A [`Schedule`] is a set of labelled calls, each released at a chosen
//! abstract time. [`TestDriver::run`] spawns one real thread per call,
//! advances the clock one tick per quantum of real time, and records each
//! call's completion time. Calls still blocked when the schedule ends (plus
//! a grace period) are recorded as never completing — which is itself the
//! signal for the permanent-suspension failure classes (FF-T2, FF-T5,
//! EF-T3).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::clock::AbstractClock;

/// One scheduled call: released when the clock reaches `at`.
pub struct ScheduledCall {
    /// Label used in the resulting [`CallRecord`].
    pub label: String,
    /// Clock time at which the call is released.
    pub at: u64,
    /// The call itself. Receives the clock (so components may inspect it).
    pub action: Box<dyn FnOnce(&AbstractClock) + Send>,
}

/// A deterministic test schedule.
#[derive(Default)]
pub struct Schedule {
    calls: Vec<ScheduledCall>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a call released at clock time `at`.
    pub fn call(
        mut self,
        label: impl Into<String>,
        at: u64,
        action: impl FnOnce(&AbstractClock) + Send + 'static,
    ) -> Self {
        self.calls.push(ScheduledCall {
            label: label.into(),
            at,
            action: Box::new(action),
        });
        self
    }

    /// Number of scheduled calls.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// True when no calls are scheduled.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// The largest release time in the schedule (0 when empty).
    pub fn horizon(&self) -> u64 {
        self.calls.iter().map(|c| c.at).max().unwrap_or(0)
    }
}

/// The outcome of one scheduled call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallRecord {
    /// The schedule label.
    pub label: String,
    /// When the call was released.
    pub released_at: u64,
    /// Clock time when the call returned, or `None` if it never completed
    /// within the run (permanently suspended as far as the test can tell).
    pub completed_at: Option<u64>,
}

impl CallRecord {
    /// True if the call completed at exactly the expected clock time.
    pub fn completed_at_time(&self, t: u64) -> bool {
        self.completed_at == Some(t)
    }

    /// True if the call completed no later than clock time `t`.
    pub fn completed_by(&self, t: u64) -> bool {
        matches!(self.completed_at, Some(c) if c <= t)
    }

    /// True if the call never completed.
    pub fn suspended(&self) -> bool {
        self.completed_at.is_none()
    }
}

/// Runs [`Schedule`]s deterministically against a component under test.
#[derive(Debug, Clone)]
pub struct TestDriver {
    /// Real-time quantum granted to the threads between clock ticks.
    pub quantum: Duration,
    /// Extra ticks granted after the last release before giving up on
    /// blocked calls.
    pub grace_ticks: u64,
}

impl Default for TestDriver {
    fn default() -> Self {
        TestDriver {
            quantum: Duration::from_millis(15),
            grace_ticks: 3,
        }
    }
}

impl TestDriver {
    /// A driver with the default quantum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `schedule`, returning one record per call in schedule order,
    /// together with the clock used (so callers can inspect the final time).
    pub fn run(&self, schedule: Schedule) -> (Vec<CallRecord>, AbstractClock) {
        let clock = AbstractClock::new();
        let horizon = schedule.horizon() + self.grace_ticks;
        let n = schedule.calls.len();
        // Completion times, u64::MAX = not completed.
        let completions: Arc<Vec<AtomicU64>> =
            Arc::new((0..n).map(|_| AtomicU64::new(u64::MAX)).collect());

        let mut meta = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (i, call) in schedule.calls.into_iter().enumerate() {
            meta.push((call.label, call.at));
            let clock = clock.clone();
            let completions = Arc::clone(&completions);
            let at = call.at;
            let action = call.action;
            handles.push(thread::spawn(move || {
                clock.await_time(at);
                action(&clock);
                completions[i].store(clock.time(), Ordering::SeqCst);
            }));
        }

        // Advance the clock one tick per quantum.
        for _ in 0..horizon {
            thread::sleep(self.quantum);
            clock.tick();
        }
        // Grace period of real time for last completions.
        thread::sleep(self.quantum * 2);

        let records: Vec<CallRecord> = meta
            .into_iter()
            .enumerate()
            .map(|(i, (label, released_at))| {
                let c = completions[i].load(Ordering::SeqCst);
                CallRecord {
                    label,
                    released_at,
                    completed_at: (c != u64::MAX).then_some(c),
                }
            })
            .collect();

        // Detach still-blocked threads: they hold only test state and the
        // process-level cleanup reclaims them when the test binary exits.
        for h in handles {
            if h.is_finished() {
                let _ = h.join();
            }
        }
        (records, clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    #[test]
    fn calls_release_in_clock_order() {
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let o1 = Arc::clone(&order);
        let o2 = Arc::clone(&order);
        let schedule = Schedule::new()
            .call("second", 2, move |_| o2.lock().push("second"))
            .call("first", 1, move |_| o1.lock().push("first"));
        let (records, _) = TestDriver::new().run(schedule);
        assert_eq!(*order.lock(), vec!["first", "second"]);
        assert!(records.iter().all(|r| !r.suspended()));
        // Completion times match release times (instant actions).
        assert!(records[0].completed_at.unwrap() >= 2);
        assert!(records[1].completed_at.unwrap() >= 1);
    }

    #[test]
    fn blocked_call_recorded_as_suspended() {
        // An action that waits for a clock time that never arrives.
        let schedule = Schedule::new().call("stuck", 1, |clock| {
            clock.await_time(1_000_000);
        });
        let driver = TestDriver {
            quantum: Duration::from_millis(5),
            grace_ticks: 2,
        };
        let (records, _) = driver.run(schedule);
        assert!(records[0].suspended());
    }

    #[test]
    fn empty_schedule_runs() {
        let (records, clock) = TestDriver::new().run(Schedule::new());
        assert!(records.is_empty());
        assert_eq!(clock.time(), TestDriver::new().grace_ticks);
    }

    #[test]
    fn record_helpers() {
        let r = CallRecord {
            label: "x".into(),
            released_at: 1,
            completed_at: Some(3),
        };
        assert!(r.completed_at_time(3));
        assert!(!r.completed_at_time(2));
        assert!(r.completed_by(3));
        assert!(r.completed_by(5));
        assert!(!r.completed_by(2));
        assert!(!r.suspended());
    }

    #[test]
    fn schedule_horizon() {
        let s = Schedule::new()
            .call("a", 4, |_| {})
            .call("b", 2, |_| {});
        assert_eq!(s.horizon(), 4);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(Schedule::new().horizon(), 0);
    }

    #[test]
    fn producer_consumer_style_handoff() {
        // A tiny monitor: consumer at t=1 blocks until producer at t=2.
        let slot: Arc<(Mutex<Option<i32>>, parking_lot::Condvar)> =
            Arc::new((Mutex::new(None), parking_lot::Condvar::new()));
        let s1 = Arc::clone(&slot);
        let s2 = Arc::clone(&slot);
        let schedule = Schedule::new()
            .call("consume", 1, move |_| {
                let (m, cv) = &*s1;
                let mut guard = m.lock();
                while guard.is_none() {
                    cv.wait(&mut guard);
                }
            })
            .call("produce", 2, move |_| {
                let (m, cv) = &*s2;
                *m.lock() = Some(42);
                cv.notify_all();
            });
        let (records, _) = TestDriver::new().run(schedule);
        // The consumer completes only after the producer ran: at time >= 2.
        assert!(records[0].completed_at.unwrap() >= 2);
        assert!(!records[1].suspended());
    }
}
