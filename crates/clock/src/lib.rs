//! # jcc-clock — the ConAn abstract clock and deterministic test driver
//!
//! The paper's testing notes rely on *checking call completion times* under
//! deterministic execution, using the abstract clock of the ConAn tool
//! (Long, Hoffman & Strooper 2001). The clock provides three operations:
//!
//! * [`AbstractClock::await_time`]`(t)` — delay the calling thread until the
//!   clock reaches time `t`,
//! * [`AbstractClock::tick`] — advance the time by one unit, waking any
//!   threads awaiting that time,
//! * [`AbstractClock::time`] — the number of units passed since the clock
//!   started.
//!
//! [`driver`] builds the deterministic test driver on top: a schedule of
//! labelled calls, each released at a chosen tick; the driver advances the
//! clock, runs the calls on real threads against the component under test,
//! and records each call's *completion time* — the oracle used to detect
//! most of Table 1's failure classes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod driver;

pub use clock::AbstractClock;
pub use driver::{CallRecord, Schedule, ScheduledCall, TestDriver};
