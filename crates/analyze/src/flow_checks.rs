//! Checks powered by the locks-held dataflow: monitor discipline, field
//! protection, redundant regions, spin loops and dead code.

use std::collections::BTreeSet;

use jcc_model::ast::{Component, Expr, LValue, Stmt, StmtPath};
use jcc_petri::{Deviation, FailureClass, Transition};

use crate::dataflow::walk_method;
use crate::diag::{CheckId, Diagnostic, Severity};
use crate::locks::LockTable;

fn class(d: Deviation, t: Transition) -> FailureClass {
    FailureClass::new(d, t)
}

/// Fields an expression reads.
fn expr_fields(expr: &Expr, out: &mut BTreeSet<String>) {
    match expr {
        Expr::Field(name) => {
            out.insert(name.clone());
        }
        Expr::Unary(_, a) => expr_fields(a, out),
        Expr::Binary(_, a, b) => {
            expr_fields(a, out);
            expr_fields(b, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                expr_fields(a, out);
            }
        }
        _ => {}
    }
}

/// Locals an expression reads.
fn expr_vars(expr: &Expr, out: &mut BTreeSet<String>) {
    match expr {
        Expr::Var(name) => {
            out.insert(name.clone());
        }
        Expr::Unary(_, a) => expr_vars(a, out),
        Expr::Binary(_, a, b) => {
            expr_vars(a, out);
            expr_vars(b, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                expr_vars(a, out);
            }
        }
        _ => {}
    }
}

/// The field accesses a single statement performs *itself* (its own
/// expressions — not those of statements nested inside its blocks, which
/// get their own flow events). Returns (reads, writes).
fn stmt_field_accesses(stmt: &Stmt) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    match stmt {
        Stmt::While { cond, .. } | Stmt::If { cond, .. } => expr_fields(cond, &mut reads),
        Stmt::Assign { target, value } => {
            expr_fields(value, &mut reads);
            if let LValue::Field(name) = target {
                writes.insert(name.clone());
            }
        }
        Stmt::Local { init, .. } => expr_fields(init, &mut reads),
        Stmt::Return(Some(e)) => expr_fields(e, &mut reads),
        _ => {}
    }
    (reads, writes)
}

/// Pre-order walk over a single statement and everything nested in it.
fn visit_stmt<'a>(stmt: &'a Stmt, f: &mut impl FnMut(&'a Stmt)) {
    f(stmt);
    match stmt {
        Stmt::While { body, .. } | Stmt::Synchronized { body, .. } => {
            for s in body {
                visit_stmt(s, f);
            }
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for s in then_branch {
                visit_stmt(s, f);
            }
            for s in else_branch {
                visit_stmt(s, f);
            }
        }
        _ => {}
    }
}

/// A loop body "makes progress" towards changing `cond` if it contains a
/// `wait` (suspending is progress: another thread runs), a `return`, or an
/// assignment to any field/local the condition reads.
fn loop_can_make_progress(cond: &Expr, body: &[Stmt]) -> bool {
    let mut cond_fields = BTreeSet::new();
    let mut cond_vars = BTreeSet::new();
    expr_fields(cond, &mut cond_fields);
    expr_vars(cond, &mut cond_vars);
    let mut progress = false;
    for stmt in body {
        visit_stmt(stmt, &mut |s| match s {
            Stmt::Wait { .. } | Stmt::Return(_) => progress = true,
            Stmt::Assign { target, .. } => match target {
                LValue::Field(f) if cond_fields.contains(f) => progress = true,
                LValue::Local(v) if cond_vars.contains(v) => progress = true,
                _ => {}
            },
            _ => {}
        });
    }
    progress
}

/// Run every dataflow-backed check over the component.
pub fn run(component: &Component, table: &LockTable, out: &mut Vec<Diagnostic>) {
    let _span = jcc_obs::span!("analyze.dataflow");

    // Pass 1: which fields are ever accessed under a lock / with none held
    // (for the protected-field interference check).
    let mut locked_fields: BTreeSet<String> = BTreeSet::new();
    let mut unlocked: Vec<(String, StmtPath, String, bool)> = Vec::new(); // (method, path, field, is_write)
    for method in &component.methods {
        walk_method(table, method, |ev| {
            let (reads, writes) = stmt_field_accesses(ev.stmt);
            if ev.locks.any_held() {
                locked_fields.extend(reads);
                locked_fields.extend(writes);
            } else {
                for f in reads {
                    unlocked.push((method.name.clone(), ev.path.clone(), f, false));
                }
                for f in writes {
                    unlocked.push((method.name.clone(), ev.path.clone(), f, true));
                }
            }
        });
    }
    for (method, path, field, is_write) in unlocked {
        if locked_fields.contains(&field) {
            let kind = if is_write { "written" } else { "read" };
            out.push(Diagnostic {
                check: CheckId::UnlockedFieldAccess,
                class: class(Deviation::FailureToFire, Transition::T1),
                severity: if is_write { Severity::High } else { Severity::Medium },
                src: None,
                method,
                path: Some(path),
                message: format!(
                    "field `{field}` is {kind} with no lock held, but is \
                     protected by a monitor elsewhere in the component"
                ),
            });
        }
    }

    // Pass 2: per-statement monitor-discipline, spin-loop and dead-code
    // checks.
    for method in &component.methods {
        // (first-dead-stmt anchors, any unreachable notify?) per method.
        let mut dead_anchors: Vec<StmtPath> = Vec::new();
        let mut dead_notify = false;
        walk_method(table, method, |ev| {
            if !ev.reachable {
                // Loop-caused dead code is the non-terminating loop's
                // fault, and that loop already gets its own FF-T4
                // diagnostic — don't pile dead-code reports on top.
                if !ev.dead_by_loop {
                    if ev.first_unreachable {
                        dead_anchors.push(ev.path.clone());
                    }
                    if matches!(ev.stmt, Stmt::Notify { .. } | Stmt::NotifyAll { .. }) {
                        dead_notify = true;
                    }
                }
                return; // discipline checks only apply to live code
            }
            match ev.stmt {
                Stmt::Wait { lock } | Stmt::Notify { lock } | Stmt::NotifyAll { lock } => {
                    let op = match ev.stmt {
                        Stmt::Wait { .. } => "wait",
                        Stmt::Notify { .. } => "notify",
                        _ => "notifyAll",
                    };
                    let id = table.resolve(lock);
                    match id {
                        Some(id) if ev.locks.holds(id) => {}
                        _ => out.push(Diagnostic {
                            check: CheckId::MonitorNotHeld,
                            class: class(Deviation::FailureToFire, Transition::T1),
                            severity: Severity::High,
                            src: None,
                            method: method.name.clone(),
                            path: Some(ev.path.clone()),
                            message: format!(
                                "`{op}` on `{lock}` without holding its monitor \
                                 (IllegalMonitorStateException at run time)"
                            ),
                        }),
                    }
                    // Nested-monitor lockout: suspending while holding a
                    // second lock means nothing can reach the notifier.
                    if matches!(ev.stmt, Stmt::Wait { .. }) {
                        let others: Vec<&str> = ev
                            .locks
                            .held_ids()
                            .filter(|h| Some(*h) != id)
                            .map(|h| table.name(h))
                            .collect();
                        if !others.is_empty() {
                            out.push(Diagnostic {
                                check: CheckId::NestedMonitorWait,
                                class: class(Deviation::FailureToFire, Transition::T2),
                                severity: Severity::High,
                                src: None,
                                method: method.name.clone(),
                                path: Some(ev.path.clone()),
                                message: format!(
                                    "`wait` on `{lock}` while still holding `{}` — \
                                     a nested-monitor lockout: waiters keep the outer \
                                     lock, so the notifier can never run",
                                    others.join("`, `")
                                ),
                            });
                        }
                    }
                }
                Stmt::Synchronized { lock, .. } => {
                    if let Some(id) = table.resolve(lock) {
                        if ev.locks.holds(id) {
                            out.push(Diagnostic {
                                check: CheckId::RedundantSync,
                                class: class(Deviation::ErroneousFiring, Transition::T1),
                                severity: Severity::Medium,
                                src: None,
                                method: method.name.clone(),
                                path: Some(ev.path.clone()),
                                message: format!(
                                    "`synchronized ({lock})` while `{}` is already \
                                     held — reentrancy makes this a redundant region",
                                    table.name(id)
                                ),
                            });
                        }
                    }
                }
                Stmt::While { cond, body } if !loop_can_make_progress(cond, body) => {
                    let literal_spin = matches!(cond, Expr::Bool(true));
                    let held: Vec<&str> = ev.locks.held_ids().map(|h| table.name(h)).collect();
                    if !literal_spin {
                        out.push(Diagnostic {
                            check: CheckId::GuardLoopWithoutWait,
                            class: class(Deviation::FailureToFire, Transition::T3),
                            severity: Severity::Medium,
                            src: None,
                            method: method.name.clone(),
                            path: Some(ev.path.clone()),
                            message: "guard loop never waits: the body neither \
                                      suspends nor changes anything the condition \
                                      reads"
                                .into(),
                        });
                    }
                    if held.is_empty() {
                        if literal_spin {
                            out.push(Diagnostic {
                                check: CheckId::LoopHoldsLockForever,
                                class: class(Deviation::FailureToFire, Transition::T4),
                                severity: Severity::Medium,
                                src: None,
                                method: method.name.clone(),
                                path: Some(ev.path.clone()),
                                message: "`while (true)` with no `wait` or `return` \
                                          in the body never terminates"
                                    .into(),
                            });
                        }
                    } else {
                        out.push(Diagnostic {
                            check: CheckId::LoopHoldsLockForever,
                            class: class(Deviation::FailureToFire, Transition::T4),
                            severity: Severity::High,
                            src: None,
                            method: method.name.clone(),
                            path: Some(ev.path.clone()),
                            message: format!(
                                "loop can never terminate while holding `{}`: the \
                                 body neither waits nor changes the condition, and \
                                 no other thread can enter the monitor to do so",
                                held.join("`, `")
                            ),
                        });
                    }
                }
                _ => {}
            }
        });
        for anchor in dead_anchors {
            if dead_notify {
                out.push(Diagnostic {
                    check: CheckId::UnreachableAfterReturn,
                    class: class(Deviation::ErroneousFiring, Transition::T4),
                    severity: Severity::High,
                    src: None,
                    method: method.name.clone(),
                    path: Some(anchor.clone()),
                    message: "unreachable code after `return` includes a notification: \
                              the monitor is released before waiters can ever be woken"
                        .into(),
                });
                out.push(Diagnostic {
                    check: CheckId::UnreachableAfterReturn,
                    class: class(Deviation::FailureToFire, Transition::T5),
                    severity: Severity::Medium,
                    src: None,
                    method: method.name.clone(),
                    path: Some(anchor),
                    message: "a notification that can never execute is a lost \
                              notification for every waiter depending on it"
                        .into(),
                });
            } else {
                out.push(Diagnostic {
                    check: CheckId::UnreachableAfterReturn,
                    class: class(Deviation::ErroneousFiring, Transition::T4),
                    severity: Severity::Low,
                    src: None,
                    method: method.name.clone(),
                    path: Some(anchor),
                    message: "statements after an unconditional `return` can never \
                              execute"
                        .into(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_model::parser::parse_component;

    fn analyze_src(src: &str) -> Vec<Diagnostic> {
        let c = parse_component(src).expect("fixture parses");
        let table = LockTable::new(&c);
        let mut out = Vec::new();
        run(&c, &table, &mut out);
        out
    }

    fn has(diags: &[Diagnostic], check: CheckId) -> bool {
        diags.iter().any(|d| d.check == check)
    }

    #[test]
    fn monitor_not_held_fires_on_unsynchronized_wait() {
        let d = analyze_src("class X { var v: int = 0; fn m() { wait; } }");
        assert!(has(&d, CheckId::MonitorNotHeld));
        assert!(d.iter().all(|x| x.class.code() != "FF-T2"));
    }

    #[test]
    fn monitor_not_held_quiet_on_synchronized_method() {
        let d = analyze_src(
            "class X { var v: int = 0; synchronized fn m() { while (v == 0) { wait; } notifyAll; } }",
        );
        assert!(!has(&d, CheckId::MonitorNotHeld));
    }

    #[test]
    fn nested_monitor_wait_fires_only_for_second_lock() {
        let d = analyze_src(
            "class X { lock a; synchronized fn m() { synchronized (a) { wait; } } }",
        );
        assert!(has(&d, CheckId::NestedMonitorWait));
        // Reentrant same-lock nesting is not a nested-monitor wait.
        let d = analyze_src(
            "class X { synchronized fn m() { synchronized (this) { wait; } } }",
        );
        assert!(!has(&d, CheckId::NestedMonitorWait));
        assert!(has(&d, CheckId::RedundantSync));
    }

    #[test]
    fn unlocked_field_access_fires_on_racy_writer_not_on_clean_monitor() {
        let d = analyze_src(
            "class X { var count: int = 0;
               fn inc() { let t: int = count; count = t + 1; }
               synchronized fn get() -> int { return count; } }",
        );
        let hits: Vec<_> = d
            .iter()
            .filter(|x| x.check == CheckId::UnlockedFieldAccess)
            .collect();
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().any(|x| x.severity == Severity::High));
        assert!(hits.iter().any(|x| x.severity == Severity::Medium));

        let d = analyze_src(
            "class X { var v: int = 0; synchronized fn m() { v = v + 1; } }",
        );
        assert!(!has(&d, CheckId::UnlockedFieldAccess));
    }

    #[test]
    fn unprotected_everywhere_field_is_not_reported() {
        // A field never accessed under any lock has no protection protocol
        // to violate — not this check's business.
        let d = analyze_src("class X { var v: int = 0; fn m() { v = 1; } }");
        assert!(!has(&d, CheckId::UnlockedFieldAccess));
    }

    #[test]
    fn spin_loop_holding_lock_is_high() {
        let d = analyze_src(
            "class X { var v: int = 0; synchronized fn m() { while (true) { skip; } v = 1; } }",
        );
        let hit = d
            .iter()
            .find(|x| x.check == CheckId::LoopHoldsLockForever)
            .expect("spin loop flagged");
        assert_eq!(hit.severity, Severity::High);
        assert_eq!(hit.class.code(), "FF-T4");
    }

    #[test]
    fn guard_loop_without_wait_fires_when_body_cannot_progress() {
        let d = analyze_src(
            "class X { var v: int = 0; synchronized fn m() { while (v == 0) { skip; } } }",
        );
        assert!(has(&d, CheckId::GuardLoopWithoutWait));
        assert!(has(&d, CheckId::LoopHoldsLockForever));

        // A wait in the body is progress.
        let d = analyze_src(
            "class X { var v: int = 0; synchronized fn m() { while (v == 0) { wait; } } }",
        );
        assert!(!has(&d, CheckId::GuardLoopWithoutWait));
        assert!(!has(&d, CheckId::LoopHoldsLockForever));

        // Assigning a condition variable is progress.
        let d = analyze_src(
            "class X { synchronized fn m() { let i: int = 0; while (i < 3) { i = i + 1; } } }",
        );
        assert!(!has(&d, CheckId::GuardLoopWithoutWait));
    }

    #[test]
    fn dead_notify_after_return_is_high_with_lost_notification() {
        let d = analyze_src(
            "class X { var v: int = 0;
               synchronized fn m() { v = 1; return; notifyAll; } }",
        );
        let hits: Vec<_> = d
            .iter()
            .filter(|x| x.check == CheckId::UnreachableAfterReturn)
            .collect();
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().any(|x| x.severity == Severity::High
            && x.class.code() == "EF-T4"));
        assert!(hits.iter().any(|x| x.severity == Severity::Medium
            && x.class.code() == "FF-T5"));
    }

    #[test]
    fn loop_caused_dead_code_is_the_loops_fault_alone() {
        // The never-terminating loop gets FF-T4; the statements it makes
        // unreachable (including a notifyAll) must NOT also earn
        // dead-code/lost-notification diagnostics.
        let d = analyze_src(
            "class X { var v: int = 0;
               synchronized fn m() { while (true) { skip; } v = 1; notifyAll; } }",
        );
        assert!(has(&d, CheckId::LoopHoldsLockForever));
        assert!(!has(&d, CheckId::UnreachableAfterReturn), "{d:?}");
    }

    #[test]
    fn plain_dead_code_is_low() {
        let d = analyze_src("class X { fn m() { return; skip; } }");
        let hit = d
            .iter()
            .find(|x| x.check == CheckId::UnreachableAfterReturn)
            .expect("dead code flagged");
        assert_eq!(hit.severity, Severity::Low);
    }

    #[test]
    fn redundant_sync_on_aux_lock() {
        let d = analyze_src(
            "class X { lock a; var v: int = 0;
               fn m() { synchronized (a) { synchronized (a) { v = 1; } } } }",
        );
        assert!(has(&d, CheckId::RedundantSync));
        // Different locks nested is not redundant.
        let d = analyze_src(
            "class X { lock a; lock b; var v: int = 0;
               fn m() { synchronized (a) { synchronized (b) { v = 1; } } } }",
        );
        assert!(!has(&d, CheckId::RedundantSync));
    }
}
