//! # jcc-analyze — static Table-1 failure-class analysis over the Monitor IR
//!
//! The paper detects its Table-1 failure classes *dynamically* — by
//! executing tests against the VM and classifying the outcomes
//! (`jcc-detect`). This crate reaches the same classes *statically*: it
//! takes a parsed [`Component`] and emits [`Diagnostic`]s keyed to the
//! failure classes, each with a method/statement location, a severity
//! tier, human rendering and a stable `jcc-analyze/v1` JSON form.
//!
//! Three analyses power the checks:
//!
//! 1. **Locks-held dataflow** ([`dataflow`]): a forward walk over MIR
//!    blocks with a must-hold lattice (reentrancy-counted), driving the
//!    monitor-discipline checks (`monitor-not-held`,
//!    `nested-monitor-wait`, `redundant-sync`), the protected-field
//!    interference check (`unlocked-field-access`), the spin-loop checks
//!    and dead-code detection.
//! 2. **Lock-order graph** ([`lockorder`]): edges `held → acquired` from
//!    every nested `synchronized` entry across all methods; a cycle is a
//!    circular-wait deadlock candidate (FF-T2).
//! 3. **Guard predicates** ([`guards`]): each `wait` is linked to the
//!    condition it re-checks and the fields that condition reads; each
//!    `notify` to the waiters it must wake. Flags missing notifiers,
//!    missed notifications, heterogeneous single-notify, and
//!    unguarded/un-looped waits.
//!
//! The severity contract: **High never fires on correct code** (CI gates
//! on this over the unmutated corpus); Medium is heuristic; Low is
//! advisory. The known benign Medium: `Semaphore.acquire` consumes a
//! permit (assigning the wait guard's field) without notifying — correct
//! for a semaphore, statically indistinguishable from a dropped notify.
//!
//! This crate absorbed and superseded the early `jcc_model::validate`
//! lint pass, which has since been removed.
//!
//! ```
//! use jcc_model::examples;
//! let report = jcc_analyze::analyze(&examples::lock_order_deadlock());
//! assert_eq!(report.count(jcc_analyze::Severity::High), 1); // FF-T2 cycle
//! println!("{}", report.render());
//! ```

#![warn(missing_docs)]

pub mod dataflow;
pub mod diag;
pub mod flow_checks;
pub mod guards;
pub mod lockorder;
pub mod locks;

pub use diag::{AnalysisReport, CheckId, Diagnostic, Severity, SrcLoc, SCHEMA};
pub use lockorder::LockOrderGraph;
pub use locks::{LockId, LockTable};

use jcc_model::ast::Component;

/// Run every static check over `component` and return the sorted,
/// deduplicated report. Deterministic: equal inputs produce byte-identical
/// rendered/JSON output.
pub fn analyze(component: &Component) -> AnalysisReport {
    let _span = jcc_obs::span!("analyze.component");
    let table = LockTable::new(component);
    let mut diagnostics = Vec::new();
    flow_checks::run(component, &table, &mut diagnostics);
    lockorder::run(component, &table, &mut diagnostics);
    guards::run(component, &table, &mut diagnostics);

    let method_order: Vec<String> = component
        .methods
        .iter()
        .map(|m| m.name.clone())
        .collect();
    let report = AnalysisReport::new(&component.name, diagnostics, &method_order);

    let obs = jcc_obs::global();
    obs.counter("analyze.components").inc();
    obs.counter("analyze.diagnostics")
        .add(report.diagnostics.len() as u64);
    for (sev, key) in [
        (Severity::High, "analyze.diagnostics.high"),
        (Severity::Medium, "analyze.diagnostics.medium"),
        (Severity::Low, "analyze.diagnostics.low"),
    ] {
        obs.counter(key).add(report.count(sev) as u64);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_model::examples;

    #[test]
    fn clean_corpus_has_zero_high_severity() {
        for (name, c) in examples::corpus() {
            let report = analyze(&c);
            let highs: Vec<_> = report.at_least(Severity::High).collect();
            assert!(highs.is_empty(), "{name}: {highs:?}");
        }
    }

    #[test]
    fn deadlock_specimens_are_flagged_and_controls_are_not() {
        let r = analyze(&examples::lock_order_deadlock());
        assert!(r.classes(Severity::High).contains("FF-T2"));
        let r = analyze(&examples::dining_deadlock());
        assert!(r.classes(Severity::High).contains("FF-T2"));
        let r = analyze(&examples::dining_ordered());
        assert_eq!(r.count(Severity::High), 0, "{}", r.render());
        let r = analyze(&examples::racy_counter());
        assert!(r.classes(Severity::High).contains("FF-T1"));
    }

    #[test]
    fn output_is_byte_identical_across_runs() {
        for (_, c) in examples::corpus() {
            let a = analyze(&c);
            let b = analyze(&c);
            assert_eq!(a.render(), b.render());
            assert_eq!(a.to_json_string(), b.to_json_string());
        }
    }

    #[test]
    fn report_is_keyed_to_failure_class_codes() {
        let r = analyze(&examples::racy_counter());
        for d in &r.diagnostics {
            assert!(d.class.code().starts_with("FF-") || d.class.code().starts_with("EF-"));
        }
    }
}
