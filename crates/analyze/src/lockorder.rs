//! The static lock-order graph: which monitor is acquired while which is
//! already held, across every method of the component.
//!
//! Each entry into a `synchronized` region while another (different)
//! monitor is held adds a directed edge `held → acquired`. Two threads
//! running methods whose edges disagree on order can each hold one lock
//! while requesting the other — the circular-wait condition for deadlock.
//! A cycle in the graph is therefore an FF-T2 candidate (permanent
//! suspension): every strongly connected component with more than one
//! monitor is reported once, with the methods that contribute its edges
//! as evidence.

use std::collections::{BTreeMap, BTreeSet};

use jcc_model::ast::Component;
use jcc_petri::{Deviation, FailureClass, Transition};

use crate::dataflow::walk_method;
use crate::diag::{CheckId, Diagnostic, Severity};
use crate::locks::{LockId, LockTable};

/// The lock-order graph: `edges[(a, b)]` = methods that acquire `b` while
/// holding `a`.
#[derive(Debug, Default)]
pub struct LockOrderGraph {
    edges: BTreeMap<(LockId, LockId), BTreeSet<String>>,
}

impl LockOrderGraph {
    /// Build the graph from every `synchronized` entry in the component.
    /// Reentrant re-acquisition (`a` while holding `a`) is not an ordering
    /// edge.
    pub fn build(component: &Component, table: &LockTable) -> LockOrderGraph {
        let mut graph = LockOrderGraph::default();
        for method in &component.methods {
            walk_method(table, method, |ev| {
                if !ev.reachable {
                    return;
                }
                if let jcc_model::ast::Stmt::Synchronized { lock, .. } = ev.stmt {
                    if let Some(acquired) = table.resolve(lock) {
                        for held in ev.locks.held_ids() {
                            if held != acquired {
                                graph
                                    .edges
                                    .entry((held, acquired))
                                    .or_default()
                                    .insert(method.name.clone());
                            }
                        }
                    }
                }
            });
        }
        graph
    }

    /// All edges, in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (LockId, LockId, &BTreeSet<String>)> {
        self.edges.iter().map(|(&(a, b), ms)| (a, b, ms))
    }

    /// Strongly connected components with ≥ 2 monitors (an SCC of one
    /// monitor cannot deadlock: reentrancy edges are excluded), each as a
    /// sorted lock set. Deterministic order by smallest member.
    pub fn cycles(&self) -> Vec<Vec<LockId>> {
        // Kosaraju on a graph of at most a handful of nodes.
        let nodes: BTreeSet<LockId> = self
            .edges
            .keys()
            .flat_map(|&(a, b)| [a, b])
            .collect();
        let fwd: BTreeMap<LockId, Vec<LockId>> = nodes
            .iter()
            .map(|&n| {
                (
                    n,
                    self.edges
                        .keys()
                        .filter(|&&(a, _)| a == n)
                        .map(|&(_, b)| b)
                        .collect(),
                )
            })
            .collect();
        let rev: BTreeMap<LockId, Vec<LockId>> = nodes
            .iter()
            .map(|&n| {
                (
                    n,
                    self.edges
                        .keys()
                        .filter(|&&(_, b)| b == n)
                        .map(|&(a, _)| a)
                        .collect(),
                )
            })
            .collect();

        fn dfs(
            n: LockId,
            adj: &BTreeMap<LockId, Vec<LockId>>,
            seen: &mut BTreeSet<LockId>,
            order: &mut Vec<LockId>,
        ) {
            if !seen.insert(n) {
                return;
            }
            for &m in adj.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
                dfs(m, adj, seen, order);
            }
            order.push(n);
        }

        let mut finish = Vec::new();
        let mut seen = BTreeSet::new();
        for &n in &nodes {
            dfs(n, &fwd, &mut seen, &mut finish);
        }
        let mut sccs = Vec::new();
        let mut assigned = BTreeSet::new();
        for &n in finish.iter().rev() {
            if assigned.contains(&n) {
                continue;
            }
            let mut members = Vec::new();
            dfs(n, &rev, &mut assigned, &mut members);
            members.sort();
            if members.len() >= 2 {
                sccs.push(members);
            }
        }
        sccs.sort();
        sccs
    }
}

/// Run the lock-order cycle check.
pub fn run(component: &Component, table: &LockTable, out: &mut Vec<Diagnostic>) {
    let _span = jcc_obs::span!("analyze.lockorder");
    let graph = LockOrderGraph::build(component, table);
    for cycle in graph.cycles() {
        let in_cycle: BTreeSet<LockId> = cycle.iter().copied().collect();
        let names: Vec<&str> = cycle.iter().map(|&id| table.name(id)).collect();
        let mut witnesses: BTreeSet<&str> = BTreeSet::new();
        for (a, b, methods) in graph.edges() {
            if in_cycle.contains(&a) && in_cycle.contains(&b) {
                witnesses.extend(methods.iter().map(String::as_str));
            }
        }
        let witness_list: Vec<&str> = witnesses.into_iter().collect();
        out.push(Diagnostic {
            check: CheckId::LockOrderCycle,
            class: FailureClass::new(Deviation::FailureToFire, Transition::T2),
            severity: Severity::High,
            src: None,
            method: format!("<{}>", component.name),
            path: None,
            message: format!(
                "locks `{}` are acquired in inconsistent orders (methods {}): \
                 circular wait — a deadlock candidate",
                names.join("`, `"),
                witness_list.join(", ")
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_model::examples;
    use jcc_model::parser::parse_component;

    fn run_on(c: &Component) -> Vec<Diagnostic> {
        let table = LockTable::new(c);
        let mut out = Vec::new();
        run(c, &table, &mut out);
        out
    }

    #[test]
    fn opposite_order_two_locks_cycle() {
        let d = run_on(&examples::lock_order_deadlock());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].check, CheckId::LockOrderCycle);
        assert_eq!(d[0].class.code(), "FF-T2");
        assert_eq!(d[0].severity, Severity::High);
        assert!(d[0].message.contains("`a`, `b`"), "{}", d[0].message);
        assert!(d[0].message.contains("backward"), "{}", d[0].message);
        assert!(d[0].message.contains("forward"), "{}", d[0].message);
    }

    #[test]
    fn dining_cycle_detected_and_hierarchy_fix_clean() {
        let d = run_on(&examples::dining_deadlock());
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`f0`, `f1`, `f2`"), "{}", d[0].message);

        let d = run_on(&examples::dining_ordered());
        assert!(d.is_empty(), "resource hierarchy must be acyclic: {d:?}");
    }

    #[test]
    fn reentrant_nesting_is_not_an_edge() {
        let c = parse_component(
            "class X { var v: int = 0;
               synchronized fn m() { synchronized (this) { v = 1; } } }",
        )
        .unwrap();
        let table = LockTable::new(&c);
        let g = LockOrderGraph::build(&c, &table);
        assert_eq!(g.edges().count(), 0);
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn synchronized_method_orders_this_before_aux() {
        let c = parse_component(
            "class X { lock a; var v: int = 0;
               synchronized fn m() { synchronized (a) { v = 1; } } }",
        )
        .unwrap();
        let table = LockTable::new(&c);
        let g = LockOrderGraph::build(&c, &table);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].0, LockId::THIS);
        assert_eq!(table.name(edges[0].1), "a");
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn clean_corpus_has_no_cycles() {
        for (name, c) in examples::corpus() {
            let d = run_on(&c);
            assert!(d.is_empty(), "{name}: {d:?}");
        }
    }
}
