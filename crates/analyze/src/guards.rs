//! Guard-predicate analysis: linking every `wait` to the condition that
//! guards it and every `notify` to the waiters it must wake.
//!
//! A monitor's wait loop `while (pred) { wait; }` re-checks `pred` after
//! each wake-up; the fields `pred` reads are the wait's *guard fields* —
//! the state another thread must change (and then notify) to release the
//! waiter. From that link the analysis flags:
//!
//! - waits whose monitor nothing ever notifies (FF-T5, structural);
//! - methods that change a waiter's guard fields without notifying its
//!   monitor — lost/missed-notification candidates (FF-T5, heuristic);
//! - single `notify` on a monitor whose waiters guard on *different*
//!   predicates, where the one wake-up can land on a waiter that cannot
//!   use it (FF-T5);
//! - waits not re-checked in a loop (EF-T5) and waits under no condition
//!   at all (EF-T3).

use std::collections::{BTreeMap, BTreeSet};

use jcc_model::ast::{Block, Component, Expr, LValue, Stmt, StmtPath, ELSE_OFFSET};
use jcc_model::pretty::print_expr;
use jcc_petri::{Deviation, FailureClass, Transition};

use crate::diag::{CheckId, Diagnostic, Severity};
use crate::locks::{LockId, LockTable};

fn class(d: Deviation, t: Transition) -> FailureClass {
    FailureClass::new(d, t)
}

/// One `wait` statement and its guarding context.
#[derive(Debug)]
struct WaitSite {
    method: String,
    path: StmtPath,
    lock: LockId,
    /// Canonical text of the nearest enclosing loop (else branch) condition;
    /// `None` for an unconditional wait.
    predicate: Option<String>,
    /// Fields the predicate reads.
    guard_fields: BTreeSet<String>,
    /// Whether some enclosing statement is a `while` loop.
    in_loop: bool,
}

/// One `notify`/`notifyAll` statement.
#[derive(Debug)]
struct NotifySite {
    method: String,
    path: StmtPath,
    lock: LockId,
    all: bool,
}

#[derive(Debug, Default)]
struct Collected {
    waits: Vec<WaitSite>,
    notifies: Vec<NotifySite>,
    /// Fields each method assigns (anywhere in its body).
    assigns: BTreeMap<String, BTreeSet<String>>,
}

fn expr_fields(expr: &Expr, out: &mut BTreeSet<String>) {
    match expr {
        Expr::Field(name) => {
            out.insert(name.clone());
        }
        Expr::Unary(_, a) => expr_fields(a, out),
        Expr::Binary(_, a, b) => {
            expr_fields(a, out);
            expr_fields(b, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                expr_fields(a, out);
            }
        }
        _ => {}
    }
}

/// Guard entries are the enclosing `while`/`if` conditions, innermost last.
struct Guard<'a> {
    cond: &'a Expr,
    is_loop: bool,
}

fn collect_block<'a>(
    block: &'a Block,
    offset: usize,
    method: &str,
    table: &LockTable,
    prefix: &mut Vec<usize>,
    guards: &mut Vec<Guard<'a>>,
    out: &mut Collected,
) {
    for (i, stmt) in block.iter().enumerate() {
        prefix.push(offset + i);
        match stmt {
            Stmt::Wait { lock } => {
                if let Some(id) = table.resolve(lock) {
                    // The predicate is the nearest enclosing *loop*
                    // condition when one exists (the re-checked guard),
                    // otherwise the nearest `if` condition.
                    let guard = guards
                        .iter()
                        .rev()
                        .find(|g| g.is_loop)
                        .or_else(|| guards.last());
                    let mut guard_fields = BTreeSet::new();
                    if let Some(g) = guard {
                        expr_fields(g.cond, &mut guard_fields);
                    }
                    out.waits.push(WaitSite {
                        method: method.to_string(),
                        path: StmtPath(prefix.clone()),
                        lock: id,
                        predicate: guard.map(|g| print_expr(g.cond)),
                        guard_fields,
                        in_loop: guards.iter().any(|g| g.is_loop),
                    });
                }
            }
            Stmt::Notify { lock } | Stmt::NotifyAll { lock } => {
                if let Some(id) = table.resolve(lock) {
                    out.notifies.push(NotifySite {
                        method: method.to_string(),
                        path: StmtPath(prefix.clone()),
                        lock: id,
                        all: matches!(stmt, Stmt::NotifyAll { .. }),
                    });
                }
            }
            Stmt::Assign {
                target: LValue::Field(f),
                ..
            } => {
                out.assigns
                    .entry(method.to_string())
                    .or_default()
                    .insert(f.clone());
            }
            Stmt::While { cond, body } => {
                guards.push(Guard { cond, is_loop: true });
                collect_block(body, 0, method, table, prefix, guards, out);
                guards.pop();
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                guards.push(Guard {
                    cond,
                    is_loop: false,
                });
                collect_block(then_branch, 0, method, table, prefix, guards, out);
                collect_block(else_branch, ELSE_OFFSET, method, table, prefix, guards, out);
                guards.pop();
            }
            Stmt::Synchronized { body, .. } => {
                collect_block(body, 0, method, table, prefix, guards, out);
            }
            _ => {}
        }
        prefix.pop();
    }
}

fn collect(component: &Component, table: &LockTable) -> Collected {
    let mut out = Collected::default();
    for method in &component.methods {
        let mut prefix = Vec::new();
        let mut guards = Vec::new();
        collect_block(
            &method.body,
            0,
            &method.name,
            table,
            &mut prefix,
            &mut guards,
            &mut out,
        );
    }
    out
}

/// Run the guard-predicate checks over the component.
pub fn run(component: &Component, table: &LockTable, out: &mut Vec<Diagnostic>) {
    let _span = jcc_obs::span!("analyze.guards");
    let info = collect(component, table);

    // Which monitors have any notifier, deduped through the lock table
    // (a BTreeSet of dense ids — two spellings of the same monitor
    // collapse, distinct monitors with equal display names do not).
    let notified: BTreeSet<LockId> = info.notifies.iter().map(|n| n.lock).collect();

    // Guard fields / distinct predicates per monitor.
    let mut guard_fields_by_lock: BTreeMap<LockId, BTreeSet<String>> = BTreeMap::new();
    let mut predicates_by_lock: BTreeMap<LockId, BTreeSet<String>> = BTreeMap::new();
    for w in &info.waits {
        guard_fields_by_lock
            .entry(w.lock)
            .or_default()
            .extend(w.guard_fields.iter().cloned());
        predicates_by_lock.entry(w.lock).or_default().insert(
            w.predicate
                .clone()
                .unwrap_or_else(|| "<unconditional>".to_string()),
        );
    }

    for w in &info.waits {
        // FF-T5 structural: a wait nothing can ever wake.
        if !notified.contains(&w.lock) {
            out.push(Diagnostic {
                check: CheckId::NoNotifierForWait,
                class: class(Deviation::FailureToFire, Transition::T5),
                severity: Severity::High,
                src: None,
                method: w.method.clone(),
                path: Some(w.path.clone()),
                message: format!(
                    "`wait` on `{}` but no statement in the component ever \
                     notifies that monitor — every waiter is suspended forever",
                    table.name(w.lock)
                ),
            });
        }
        // EF-T3 / EF-T5: unguarded or un-re-checked waits. An
        // unconditional wait subsumes the weaker wait-not-in-loop finding
        // for the same statement.
        if w.predicate.is_none() {
            out.push(Diagnostic {
                check: CheckId::UnconditionalWait,
                class: class(Deviation::ErroneousFiring, Transition::T3),
                severity: Severity::High,
                src: None,
                method: w.method.clone(),
                path: Some(w.path.clone()),
                message: "`wait` under no condition at all: the thread suspends \
                          regardless of the component's state"
                    .into(),
            });
        } else if !w.in_loop {
            out.push(Diagnostic {
                check: CheckId::WaitNotInLoop,
                class: class(Deviation::ErroneousFiring, Transition::T5),
                severity: Severity::Medium,
                src: None,
                method: w.method.clone(),
                path: Some(w.path.clone()),
                message: format!(
                    "`wait` guarded by `if ({})` is not re-checked in a loop: a \
                     premature wake-up re-enters the critical section with the \
                     predicate still false",
                    w.predicate.as_deref().unwrap_or("?")
                ),
            });
        }
    }

    // FF-T5 heuristic: a method moves a waiter's guard state but never
    // notifies the waiter's monitor. Skipped when the monitor has no
    // notifier at all (the structural check above already fires).
    for method in &component.methods {
        let Some(assigned) = info.assigns.get(&method.name) else {
            continue;
        };
        let notifies_here: BTreeSet<LockId> = info
            .notifies
            .iter()
            .filter(|n| n.method == method.name)
            .map(|n| n.lock)
            .collect();
        for (&lock, guard_fields) in &guard_fields_by_lock {
            if !notified.contains(&lock) || notifies_here.contains(&lock) {
                continue;
            }
            let touched: Vec<&str> = assigned
                .intersection(guard_fields)
                .map(String::as_str)
                .collect();
            if !touched.is_empty() {
                out.push(Diagnostic {
                    check: CheckId::MissedNotification,
                    class: class(Deviation::FailureToFire, Transition::T5),
                    severity: Severity::Medium,
                    src: None,
                    method: method.name.clone(),
                    path: None,
                    message: format!(
                        "assigns `{}` — guard state of waiters on `{}` — without \
                         notifying that monitor: a waiter whose predicate just \
                         became true is never woken",
                        touched.join("`, `"),
                        table.name(lock)
                    ),
                });
            }
        }
    }

    // FF-T5: single notify with heterogeneous waiters; advisory style note
    // when the waiters are uniform.
    for n in info.notifies.iter().filter(|n| !n.all) {
        let Some(predicates) = predicates_by_lock.get(&n.lock) else {
            continue; // no waiters on this monitor
        };
        if predicates.len() >= 2 {
            let preds: Vec<&str> = predicates.iter().map(String::as_str).collect();
            out.push(Diagnostic {
                check: CheckId::NotifySingleHeterogeneous,
                class: class(Deviation::FailureToFire, Transition::T5),
                severity: Severity::Medium,
                src: None,
                method: n.method.clone(),
                path: Some(n.path.clone()),
                message: format!(
                    "single `notify` on `{}` whose waiters guard on different \
                     predicates ({}): the one wake-up can be consumed by a \
                     waiter that cannot proceed, losing the notification",
                    table.name(n.lock),
                    preds.join("; ")
                ),
            });
        } else {
            out.push(Diagnostic {
                check: CheckId::NotifyInsteadOfNotifyAllStyle,
                class: class(Deviation::FailureToFire, Transition::T5),
                severity: Severity::Low,
                src: None,
                method: n.method.clone(),
                path: Some(n.path.clone()),
                message: format!(
                    "single `notify` on `{}`: waiters are uniform today, but \
                     `notifyAll` is robust to future waiter diversity",
                    table.name(n.lock)
                ),
            });
        }
    }

    // EF-T1 candidate (migrated lint): a synchronized method that neither
    // uses the monitor nor touches shared state.
    for method in &component.methods {
        if !method.synchronized {
            continue;
        }
        let uses_monitor = info
            .waits
            .iter()
            .any(|w| w.method == method.name)
            || info.notifies.iter().any(|n| n.method == method.name);
        let touches_shared = info.assigns.contains_key(&method.name)
            || method_reads_fields(method);
        if !uses_monitor && !touches_shared {
            out.push(Diagnostic {
                check: CheckId::PossiblyUnnecessarySync,
                class: class(Deviation::ErroneousFiring, Transition::T1),
                severity: Severity::Low,
                src: None,
                method: method.name.clone(),
                path: None,
                message: "synchronized method neither waits, notifies, nor touches \
                          a shared field — the monitor may be unnecessary"
                    .into(),
            });
        }
    }
}

fn method_reads_fields(method: &jcc_model::ast::Method) -> bool {
    fn block_reads(block: &Block) -> bool {
        block.iter().any(|stmt| match stmt {
            Stmt::While { cond, body } => reads(cond) || block_reads(body),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => reads(cond) || block_reads(then_branch) || block_reads(else_branch),
            Stmt::Assign { value, .. } => reads(value),
            Stmt::Local { init, .. } => reads(init),
            Stmt::Return(Some(e)) => reads(e),
            Stmt::Synchronized { body, .. } => block_reads(body),
            _ => false,
        })
    }
    fn reads(e: &Expr) -> bool {
        let mut fields = BTreeSet::new();
        expr_fields(e, &mut fields);
        !fields.is_empty()
    }
    block_reads(&method.body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_model::examples;
    use jcc_model::parser::parse_component;

    fn analyze_src(src: &str) -> Vec<Diagnostic> {
        let c = parse_component(src).expect("fixture parses");
        let table = LockTable::new(&c);
        let mut out = Vec::new();
        run(&c, &table, &mut out);
        out
    }

    fn run_on(c: &Component) -> Vec<Diagnostic> {
        let table = LockTable::new(c);
        let mut out = Vec::new();
        run(c, &table, &mut out);
        out
    }

    fn has(diags: &[Diagnostic], check: CheckId) -> bool {
        diags.iter().any(|d| d.check == check)
    }

    #[test]
    fn no_notifier_fires_per_wait_and_respects_lock_identity() {
        let d = analyze_src(
            "class X { var v: int = 0;
               synchronized fn m() { while (v == 0) { wait; } } }",
        );
        assert!(has(&d, CheckId::NoNotifierForWait));

        // The notifier is on a *different* monitor than the wait: a name
        // comparison would miss this, the lock table does not.
        let d = analyze_src(
            "class X { lock a; var v: int = 0;
               synchronized fn m() { while (v == 0) { wait; } }
               fn k() { synchronized (a) { notifyAll(a); } } }",
        );
        assert!(has(&d, CheckId::NoNotifierForWait));

        // Same monitor: no finding.
        let d = analyze_src(
            "class X { var v: int = 0;
               synchronized fn m() { while (v == 0) { wait; } }
               synchronized fn k() { v = 1; notifyAll; } }",
        );
        assert!(!has(&d, CheckId::NoNotifierForWait));
    }

    #[test]
    fn wait_not_in_loop_vs_unconditional() {
        let d = analyze_src(
            "class X { var go: bool = false;
               synchronized fn m() { if (!go) { wait; } notifyAll; } }",
        );
        assert!(has(&d, CheckId::WaitNotInLoop));
        assert!(!has(&d, CheckId::UnconditionalWait));

        let d = analyze_src(
            "class X { var go: bool = false;
               synchronized fn m() { wait; notifyAll; } }",
        );
        assert!(has(&d, CheckId::UnconditionalWait));
        assert!(
            !has(&d, CheckId::WaitNotInLoop),
            "unconditional-wait subsumes wait-not-in-loop"
        );

        // A wait inside if inside while is re-checked: neither fires.
        let d = analyze_src(
            "class X { var v: int = 0;
               synchronized fn m() { while (v == 0) { if (v == 0) { wait; } } notifyAll; } }",
        );
        assert!(!has(&d, CheckId::WaitNotInLoop));
        assert!(!has(&d, CheckId::UnconditionalWait));
    }

    #[test]
    fn missed_notification_fires_when_guard_field_assigned_without_notify() {
        // k assigns v (the guard field of m's wait) and never notifies,
        // while another notifier exists (so the structural check is quiet).
        let d = analyze_src(
            "class X { var v: int = 0;
               synchronized fn m() { while (v == 0) { wait; } }
               synchronized fn k() { v = 1; }
               synchronized fn init() { v = 0; notifyAll; } }",
        );
        let hits: Vec<_> = d
            .iter()
            .filter(|x| x.check == CheckId::MissedNotification)
            .collect();
        assert!(hits.iter().any(|x| x.method == "k"), "{hits:?}");
    }

    #[test]
    fn missed_notification_quiet_on_producer_consumer() {
        let d = run_on(&examples::producer_consumer());
        assert!(!has(&d, CheckId::MissedNotification), "{d:?}");
    }

    #[test]
    fn semaphore_acquire_is_the_known_benign_medium() {
        // Semaphore.acquire consumes a permit (assigning the guard field)
        // without notifying — correct for a semaphore, but statically
        // indistinguishable from a dropped notify. Documented benign
        // Medium; must never be High.
        let d = run_on(&examples::semaphore());
        let hits: Vec<_> = d
            .iter()
            .filter(|x| x.check == CheckId::MissedNotification)
            .collect();
        assert!(hits.iter().any(|x| x.method == "acquire"), "{hits:?}");
        assert!(hits.iter().all(|x| x.severity == Severity::Medium));
    }

    #[test]
    fn heterogeneous_notify_fires_on_producer_consumer_mutant() {
        use jcc_model::mutate::{apply_mutation, enumerate_mutations, MutationKind};
        let c = examples::producer_consumer();
        let m = enumerate_mutations(&c)
            .into_iter()
            .find(|m| m.kind == MutationKind::NotifyInsteadOfNotifyAll && m.method == "receive")
            .unwrap();
        let mutant = apply_mutation(&c, &m).unwrap();
        let d = run_on(&mutant);
        let hit = d
            .iter()
            .find(|x| x.check == CheckId::NotifySingleHeterogeneous)
            .expect("heterogeneous waiters flagged");
        assert_eq!(hit.severity, Severity::Medium);
        assert!(hit.message.contains("curPos == 0"), "{}", hit.message);
        assert!(hit.message.contains("curPos > 0"), "{}", hit.message);
    }

    #[test]
    fn homogeneous_notify_is_only_a_style_note() {
        use jcc_model::mutate::{apply_mutation, enumerate_mutations, MutationKind};
        let c = examples::semaphore();
        let m = enumerate_mutations(&c)
            .into_iter()
            .find(|m| m.kind == MutationKind::NotifyInsteadOfNotifyAll)
            .unwrap();
        let mutant = apply_mutation(&c, &m).unwrap();
        let d = run_on(&mutant);
        assert!(!has(&d, CheckId::NotifySingleHeterogeneous));
        let hit = d
            .iter()
            .find(|x| x.check == CheckId::NotifyInsteadOfNotifyAllStyle)
            .expect("style note present");
        assert_eq!(hit.severity, Severity::Low);
    }

    #[test]
    fn possibly_unnecessary_sync_is_low_and_quiet_on_corpus() {
        let d = analyze_src(
            "class X { synchronized fn m(v: int) -> int { return v + 1; } }",
        );
        let hit = d
            .iter()
            .find(|x| x.check == CheckId::PossiblyUnnecessarySync)
            .expect("lint fires");
        assert_eq!(hit.severity, Severity::Low);
        for (name, c) in examples::corpus() {
            let d = run_on(&c);
            assert!(!has(&d, CheckId::PossiblyUnnecessarySync), "{name}: {d:?}");
        }
    }

    #[test]
    fn drop_notify_mutants_are_flagged_across_the_corpus() {
        use jcc_model::mutate::{all_mutants, MutationKind};
        for (name, c) in examples::corpus() {
            for (m, mutant) in all_mutants(&c) {
                if m.kind != MutationKind::DropNotify {
                    continue;
                }
                let d = run_on(&mutant);
                let parent = run_on(&c);
                let fresh_ff_t5 = d
                    .iter()
                    .filter(|x| x.class.code() == "FF-T5" && x.severity >= Severity::Medium)
                    .count()
                    > parent
                        .iter()
                        .filter(|x| x.class.code() == "FF-T5" && x.severity >= Severity::Medium)
                        .count();
                assert!(fresh_ff_t5, "{name} {} not flagged", m.label());
            }
        }
    }
}
