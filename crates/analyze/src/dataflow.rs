//! A small forward dataflow framework over MIR blocks.
//!
//! The MIR is structured (no goto, `synchronized` regions are properly
//! nested blocks), so forward analysis is a single pre-order walk that
//! threads a lattice value through each statement, forks it at `if`,
//! re-joins after both branches, and iterates loop bodies to a fixpoint.
//! The framework is generic over a [`JoinSemiLattice`]; the analyzer's
//! workhorse instance is [`LockState`], the must-hold locks lattice with
//! reentrancy counts, combined with reachability tracking (whether an
//! unconditional `return` or a `while (true)` that never returns cuts off
//! the statements that follow).
//!
//! Checks subscribe as a visitor: for every statement they receive a
//! [`FlowEvent`] carrying the statement, its [`StmtPath`], the lock state
//! *before* it executes, the enclosing-loop depth and reachability.

use jcc_model::ast::{Block, Expr, Method, Stmt, StmtPath, ELSE_OFFSET};
use std::collections::BTreeMap;

use crate::locks::{LockId, LockTable};

/// A join-semilattice: the merge operator for forward dataflow states at
/// control-flow joins.
pub trait JoinSemiLattice: Clone + PartialEq {
    /// Merge `other` into `self`; returns `true` when `self` changed
    /// (drives fixpoint iteration).
    fn join(&mut self, other: &Self) -> bool;
}

/// The must-hold locks lattice: which monitors are definitely held at a
/// program point, with reentrancy counts. `synchronized` on an
/// already-held monitor bumps the count (Java monitors are reentrant);
/// leaving the region decrements it, releasing only at zero.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LockState {
    held: BTreeMap<LockId, u32>,
}

impl LockState {
    /// The empty state: no monitors held.
    pub fn empty() -> LockState {
        LockState::default()
    }

    /// Acquire `id` (entering a synchronized region).
    pub fn acquire(&mut self, id: LockId) {
        *self.held.entry(id).or_insert(0) += 1;
    }

    /// Release `id` (leaving a synchronized region).
    pub fn release(&mut self, id: LockId) {
        if let Some(n) = self.held.get_mut(&id) {
            *n -= 1;
            if *n == 0 {
                self.held.remove(&id);
            }
        }
    }

    /// Whether `id` is definitely held.
    pub fn holds(&self, id: LockId) -> bool {
        self.held.contains_key(&id)
    }

    /// Reentrancy depth of `id` (0 when not held).
    pub fn depth(&self, id: LockId) -> u32 {
        self.held.get(&id).copied().unwrap_or(0)
    }

    /// Whether any monitor is held.
    pub fn any_held(&self) -> bool {
        !self.held.is_empty()
    }

    /// The held monitors, in `LockId` order.
    pub fn held_ids(&self) -> impl Iterator<Item = LockId> + '_ {
        self.held.keys().copied()
    }
}

impl JoinSemiLattice for LockState {
    /// Must-analysis: a lock is held after a join only if both paths hold
    /// it, at the smaller reentrancy depth.
    fn join(&mut self, other: &Self) -> bool {
        let mut changed = false;
        let mut merged = BTreeMap::new();
        for (&id, &n) in &self.held {
            if let Some(&m) = other.held.get(&id) {
                merged.insert(id, n.min(m));
            }
        }
        if merged != self.held {
            self.held = merged;
            changed = true;
        }
        changed
    }
}

/// What a check's visitor sees for each statement.
#[derive(Debug)]
pub struct FlowEvent<'a> {
    /// Path of the statement within the method body.
    pub path: StmtPath,
    /// The statement itself.
    pub stmt: &'a Stmt,
    /// Monitors definitely held immediately before the statement.
    pub locks: &'a LockState,
    /// Number of enclosing `while` loops.
    pub loop_depth: usize,
    /// Whether control can reach this statement.
    pub reachable: bool,
    /// `true` for the first unreachable statement of its block — the
    /// anchor a dead-code diagnostic should attach to.
    pub first_unreachable: bool,
    /// When unreachable: `true` if the cut was a non-terminating
    /// `while (true)` rather than a `return`. Lets checks avoid piling a
    /// dead-code diagnostic on top of the loop's own never-terminates one.
    pub dead_by_loop: bool,
}

/// Reachability as it flows through a block: whether control is live and,
/// when it is not, whether the cut was a non-terminating loop.
#[derive(Clone, Copy)]
struct Reach {
    live: bool,
    by_loop: bool,
}

struct Walker<'a, F: FnMut(&FlowEvent<'_>)> {
    table: &'a LockTable,
    visit: F,
}

impl<F: FnMut(&FlowEvent<'_>)> Walker<'_, F> {
    /// Walk `block`, threading `state` through it. `offset` is 0 for
    /// ordinary blocks and [`ELSE_OFFSET`] when the block is an
    /// else-branch (so emitted paths address the right branch). Returns
    /// whether control can fall off the end of the block (`false` when an
    /// unconditional `return` or a non-returning `while (true)`
    /// intervenes).
    fn walk_block(
        &mut self,
        block: &Block,
        offset: usize,
        prefix: &mut Vec<usize>,
        state: &mut LockState,
        loop_depth: usize,
        mut reach: Reach,
    ) -> bool {
        let mut was_reachable = reach.live;
        for (i, stmt) in block.iter().enumerate() {
            prefix.push(offset + i);
            let first_unreachable = was_reachable && !reach.live;
            was_reachable = reach.live;
            (self.visit)(&FlowEvent {
                path: StmtPath(prefix.clone()),
                stmt,
                locks: state,
                loop_depth,
                reachable: reach.live,
                first_unreachable,
                dead_by_loop: reach.by_loop,
            });
            match stmt {
                Stmt::Synchronized { lock, body } => {
                    let id = self.table.resolve(lock);
                    if let Some(id) = id {
                        state.acquire(id);
                    }
                    self.walk_block(body, 0, prefix, state, loop_depth, reach);
                    if let Some(id) = id {
                        state.release(id);
                    }
                }
                Stmt::While { cond, body } => {
                    // Fixpoint over the loop body. Structured sync keeps
                    // the lock state balanced across a block, so this
                    // converges on the first iteration; the join is kept
                    // for generality (and checked in debug builds).
                    let entry = state.clone();
                    self.walk_block(body, 0, prefix, state, loop_depth + 1, reach);
                    let changed = state.join(&entry);
                    debug_assert!(!changed, "lock state must be balanced across a loop body");
                    // `while (true)` has no false exit: everything after it
                    // is unreachable. A `return` in the body exits the
                    // whole method, not just the loop, so it cannot make
                    // the code after the loop live either.
                    if reach.live && matches!(cond, Expr::Bool(true)) {
                        reach = Reach {
                            live: false,
                            by_loop: true,
                        };
                    }
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    let mut then_state = state.clone();
                    let then_falls =
                        self.walk_block(then_branch, 0, prefix, &mut then_state, loop_depth, reach);
                    let else_falls =
                        self.walk_block(else_branch, ELSE_OFFSET, prefix, state, loop_depth, reach);
                    let _ = state.join(&then_state);
                    if reach.live && !then_falls && !else_falls && !else_branch.is_empty() {
                        reach = Reach {
                            live: false,
                            by_loop: false,
                        };
                    }
                }
                Stmt::Return(_) if reach.live => {
                    reach = Reach {
                        live: false,
                        by_loop: false,
                    };
                }
                _ => {}
            }
            prefix.pop();
        }
        reach.live
    }
}

/// Run the forward walk over one method, invoking `visit` once per
/// statement in pre-order with the state *before* that statement.
/// A `synchronized` method starts with the receiver monitor held.
pub fn walk_method(table: &LockTable, method: &Method, visit: impl FnMut(&FlowEvent<'_>)) {
    let mut state = LockState::empty();
    if method.synchronized {
        state.acquire(LockId::THIS);
    }
    let mut w = Walker { table, visit };
    let mut prefix = Vec::new();
    w.walk_block(
        &method.body,
        0,
        &mut prefix,
        &mut state,
        0,
        Reach {
            live: true,
            by_loop: false,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_model::ast::{Component, LockRef, Method};

    fn table() -> LockTable {
        LockTable::new(&Component {
            name: "C".into(),
            locks: vec!["aux".into()],
            fields: vec![],
            methods: vec![],
        })
    }

    fn method(synchronized: bool, body: Block) -> Method {
        Method {
            name: "m".into(),
            params: vec![],
            ret: None,
            synchronized,
            body,
        }
    }

    fn collect(
        t: &LockTable,
        m: &Method,
    ) -> Vec<(StmtPath, bool, Vec<LockId>, u32, bool)> {
        let mut out = Vec::new();
        walk_method(t, m, |ev| {
            out.push((
                ev.path.clone(),
                ev.reachable,
                ev.locks.held_ids().collect(),
                ev.locks.depth(LockId::THIS),
                ev.first_unreachable,
            ));
        });
        out
    }

    #[test]
    fn synchronized_method_holds_this() {
        let t = table();
        let m = method(true, vec![Stmt::Wait { lock: LockRef::This }]);
        let evs = collect(&t, &m);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].2, vec![LockId::THIS]);
    }

    #[test]
    fn nested_sync_tracks_reentrancy_and_releases() {
        let t = table();
        let m = method(
            true,
            vec![
                Stmt::Synchronized {
                    lock: LockRef::This,
                    body: vec![Stmt::Skip],
                },
                Stmt::Skip,
            ],
        );
        let evs = collect(&t, &m);
        // inner Skip sees depth 2; trailing Skip is back to depth 1
        assert_eq!(evs[1].0, StmtPath(vec![0, 0]));
        assert_eq!(evs[1].3, 2);
        assert_eq!(evs[2].0, StmtPath(vec![1]));
        assert_eq!(evs[2].3, 1);
    }

    #[test]
    fn aux_lock_held_only_inside_its_region() {
        let t = table();
        let aux = t.resolve(&LockRef::Named("aux".into())).unwrap();
        let m = method(
            false,
            vec![
                Stmt::Synchronized {
                    lock: LockRef::Named("aux".into()),
                    body: vec![Stmt::Skip],
                },
                Stmt::Skip,
            ],
        );
        let evs = collect(&t, &m);
        assert_eq!(evs[1].2, vec![aux]);
        assert!(evs[2].2.is_empty());
    }

    #[test]
    fn statements_after_return_are_unreachable_and_flagged_once() {
        let t = table();
        let m = method(
            false,
            vec![Stmt::Return(None), Stmt::Skip, Stmt::Skip],
        );
        let evs = collect(&t, &m);
        assert!(evs[0].1);
        assert!(!evs[1].1 && evs[1].4, "first dead stmt flagged");
        assert!(!evs[2].1 && !evs[2].4, "second dead stmt not re-flagged");
    }

    #[test]
    fn while_true_cuts_off_the_rest() {
        let t = table();
        let m = method(
            false,
            vec![
                Stmt::While {
                    cond: Expr::Bool(true),
                    body: vec![Stmt::Skip],
                },
                Stmt::Skip,
            ],
        );
        let evs = collect(&t, &m);
        assert!(!evs[2].1, "statement after while(true) is unreachable");
    }

    #[test]
    fn unreachability_cause_distinguishes_loop_from_return() {
        let t = table();
        let m = method(
            false,
            vec![
                Stmt::While {
                    cond: Expr::Bool(true),
                    body: vec![Stmt::Skip],
                },
                Stmt::Skip,
            ],
        );
        let mut causes = Vec::new();
        walk_method(&t, &m, |ev| causes.push((ev.reachable, ev.dead_by_loop)));
        assert_eq!(causes[2], (false, true), "loop-caused cut is marked");

        let m = method(false, vec![Stmt::Return(None), Stmt::Skip]);
        let mut causes = Vec::new();
        walk_method(&t, &m, |ev| causes.push((ev.reachable, ev.dead_by_loop)));
        assert_eq!(causes[1], (false, false), "return-caused cut is not");
    }

    #[test]
    fn if_branches_fork_and_rejoin() {
        let t = table();
        let m = method(
            false,
            vec![
                Stmt::If {
                    cond: Expr::Bool(true),
                    then_branch: vec![Stmt::Return(None)],
                    else_branch: vec![Stmt::Return(None)],
                },
                Stmt::Skip,
            ],
        );
        let evs = collect(&t, &m);
        // else-branch path carries the sentinel
        assert_eq!(evs[2].0, StmtPath(vec![0, ELSE_OFFSET]));
        assert!(!evs[3].1, "both branches return: join is unreachable");
    }

    #[test]
    fn if_with_one_returning_branch_still_falls_through() {
        let t = table();
        let m = method(
            false,
            vec![
                Stmt::If {
                    cond: Expr::Bool(true),
                    then_branch: vec![Stmt::Return(None)],
                    else_branch: vec![],
                },
                Stmt::Skip,
            ],
        );
        let evs = collect(&t, &m);
        assert!(evs.last().unwrap().1);
    }

    #[test]
    fn join_is_pointwise_min() {
        let mut a = LockState::empty();
        a.acquire(LockId(0));
        a.acquire(LockId(0));
        a.acquire(LockId(1));
        let mut b = LockState::empty();
        b.acquire(LockId(0));
        assert!(a.join(&b));
        assert_eq!(a.depth(LockId(0)), 1);
        assert!(!a.holds(LockId(1)));
    }
}
