//! Diagnostics: what the analyzer reports and how it is rendered.
//!
//! Every finding is a [`Diagnostic`]: a check identifier, the Table-1
//! [`FailureClass`] it predicts, a [`Severity`], and a location (method plus
//! optional statement path). A whole-component run is an
//! [`AnalysisReport`], which renders as human-readable text or as the
//! stable machine-readable `jcc-analyze/v1` JSON document.

use std::collections::BTreeSet;
use std::fmt;

use jcc_model::ast::StmtPath;
use jcc_petri::FailureClass;
use jcc_obs::json::Json;

/// The schema identifier written into every JSON report.
pub const SCHEMA: &str = "jcc-analyze/v1";

/// How confident the analyzer is that a diagnostic is a genuine defect.
///
/// The contract the CI gate relies on: **`High` diagnostics never fire on
/// correct code** — every `High` check is structural (an unconditional
/// `wait`, a lock-order cycle, a monitor operation outside its monitor,
/// dead code hiding a notification). `Medium` checks are heuristics that
/// may flag conservative-but-correct code; `Low` is advisory style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: worth a look, often fine.
    Low,
    /// Heuristic: likely defect, false positives possible.
    Medium,
    /// Structural: should never fire on correct code.
    High,
}

impl Severity {
    /// Stable lower-case name used in JSON and rendering.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Low => "low",
            Severity::Medium => "medium",
            Severity::High => "high",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The individual checks the analyzer runs. Each has a stable kebab-case
/// identifier (part of the `jcc-analyze/v1` schema) and a default severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CheckId {
    /// `wait`/`notify`/`notifyAll` reached without holding the target
    /// monitor — Java's `IllegalMonitorStateException`, the runtime face of
    /// FF-T1 (the guarding synchronization never fired).
    MonitorNotHeld,
    /// A `wait` that suspends while holding a *second* monitor: the classic
    /// nested-monitor lockout — the outer lock is never released, so the
    /// notifier can never get in (FF-T2).
    NestedMonitorWait,
    /// A shared field accessed with no lock held although the component
    /// protects the same field with a lock elsewhere (FF-T1 interference).
    UnlockedFieldAccess,
    /// Two locks acquired in inconsistent orders across the component — a
    /// static deadlock candidate (FF-T2).
    LockOrderCycle,
    /// `synchronized` on a monitor already held: reentrancy makes it a
    /// no-op, i.e. unnecessary synchronization (EF-T1).
    RedundantSync,
    /// A synchronized method that neither waits, notifies nor touches
    /// shared state (EF-T1 candidate; migrated from
    /// `jcc_model::validate::lints`).
    PossiblyUnnecessarySync,
    /// A `wait` whose predicate is never re-checked: the enclosing
    /// statement is not a `while` loop, so a premature wake-up re-enters
    /// the critical section unchecked (EF-T5; migrated from
    /// `jcc_model::validate::lints`).
    WaitNotInLoop,
    /// A `wait` under no conditional at all — the thread suspends no matter
    /// what the component's state is (EF-T3, erroneous call to wait).
    UnconditionalWait,
    /// A `wait` on a lock that nothing in the component ever notifies
    /// (FF-T5; migrated from `jcc_model::validate::lints`, now resolving
    /// locks through the declared-lock table).
    NoNotifierForWait,
    /// A method assigns fields some waiter's guard reads, but never
    /// notifies that waiter's monitor — a lost/missed notification
    /// candidate (FF-T5).
    MissedNotification,
    /// A single `notify` on a monitor whose waiters guard on *different*
    /// predicates: the wake-up can be consumed by a waiter that cannot use
    /// it (FF-T5).
    NotifySingleHeterogeneous,
    /// A single `notify` where `notifyAll` would be safer (uniform waiters;
    /// advisory only).
    NotifyInsteadOfNotifyAllStyle,
    /// A guard loop without a `wait` in its body: the thread spins on a
    /// predicate instead of suspending (FF-T3, missed wait).
    GuardLoopWithoutWait,
    /// A loop that can never terminate while the monitor is held: no other
    /// thread can make progress or change the guard (FF-T4, retained lock).
    LoopHoldsLockForever,
    /// Statements after an unconditional `return` in the same block; when
    /// the dead code contains a notification, the lock is released before
    /// the waiters are woken (EF-T4 / plain dead code otherwise).
    UnreachableAfterReturn,
}

impl CheckId {
    /// Every check, in report order.
    pub const ALL: [CheckId; 15] = [
        CheckId::MonitorNotHeld,
        CheckId::NestedMonitorWait,
        CheckId::UnlockedFieldAccess,
        CheckId::LockOrderCycle,
        CheckId::RedundantSync,
        CheckId::PossiblyUnnecessarySync,
        CheckId::WaitNotInLoop,
        CheckId::UnconditionalWait,
        CheckId::NoNotifierForWait,
        CheckId::MissedNotification,
        CheckId::NotifySingleHeterogeneous,
        CheckId::NotifyInsteadOfNotifyAllStyle,
        CheckId::GuardLoopWithoutWait,
        CheckId::LoopHoldsLockForever,
        CheckId::UnreachableAfterReturn,
    ];

    /// The stable kebab-case identifier (part of the JSON schema).
    pub fn code(self) -> &'static str {
        match self {
            CheckId::MonitorNotHeld => "monitor-not-held",
            CheckId::NestedMonitorWait => "nested-monitor-wait",
            CheckId::UnlockedFieldAccess => "unlocked-field-access",
            CheckId::LockOrderCycle => "lock-order-cycle",
            CheckId::RedundantSync => "redundant-sync",
            CheckId::PossiblyUnnecessarySync => "possibly-unnecessary-sync",
            CheckId::WaitNotInLoop => "wait-not-in-loop",
            CheckId::UnconditionalWait => "unconditional-wait",
            CheckId::NoNotifierForWait => "no-notifier-for-wait",
            CheckId::MissedNotification => "missed-notification",
            CheckId::NotifySingleHeterogeneous => "notify-single-heterogeneous",
            CheckId::NotifyInsteadOfNotifyAllStyle => "notify-instead-of-notify-all",
            CheckId::GuardLoopWithoutWait => "guard-loop-without-wait",
            CheckId::LoopHoldsLockForever => "loop-holds-lock-forever",
            CheckId::UnreachableAfterReturn => "unreachable-after-return",
        }
    }
}

impl fmt::Display for CheckId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A machine-usable source location for a diagnostic, attached by source
/// frontends (the Java frontend maps MIR method/statement ids back through
/// its `LowerMap`). The DSL path leaves it `None`, which keeps every
/// pre-existing rendering and JSON document byte-identical.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SrcLoc {
    /// Source file the diagnostic points into.
    pub file: String,
    /// 1-based line of the span start.
    pub line: u32,
    /// 1-based column of the span start.
    pub col: u32,
    /// Byte range `[lo, hi)` in the file.
    pub span: (u32, u32),
}

/// One static finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which check fired.
    pub check: CheckId,
    /// The Table-1 failure class this diagnostic predicts.
    pub class: FailureClass,
    /// Confidence tier (see [`Severity`]).
    pub severity: Severity,
    /// The method the diagnostic is anchored in (`<component>` for
    /// component-level findings such as lock-order cycles).
    pub method: String,
    /// Statement path of the offending statement, where one exists.
    pub path: Option<StmtPath>,
    /// Source location, when a source frontend can supply one. The
    /// analyzer itself always emits `None`; frontends attach locations via
    /// [`AnalysisReport::attach_sources`].
    pub src: Option<SrcLoc>,
    /// Human-readable explanation with the concrete evidence.
    pub message: String,
}

impl Diagnostic {
    /// Location string: `method@[1.0]` or just `method`.
    pub fn location(&self) -> String {
        match &self.path {
            Some(p) => {
                let steps: Vec<String> = p.0.iter().map(|s| s.to_string()).collect();
                format!("{}@[{}]", self.method, steps.join("."))
            }
            None => self.method.clone(),
        }
    }

    /// The sort/dedup key: deterministic, independent of discovery order.
    fn sort_key(&self) -> (String, Vec<usize>, CheckId, String) {
        (
            self.method.clone(),
            self.path.as_ref().map(|p| p.0.clone()).unwrap_or_default(),
            self.check,
            self.message.clone(),
        )
    }

    /// The source-aware sort prefix: `(file, span, check)`. Diagnostics
    /// without a source location (the DSL path) all share the minimal key,
    /// so their relative order is still decided by the declaration-order
    /// key — the pre-existing byte-identical ordering.
    fn src_key(&self) -> (String, (u32, u32), CheckId) {
        match &self.src {
            Some(s) => (s.file.clone(), s.span, self.check),
            None => (String::new(), (0, 0), CheckId::ALL[0]),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {} at {}: {}",
            self.severity,
            self.class.code(),
            self.check,
            self.location(),
            self.message
        )
    }
}

/// The result of analyzing one component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Component name.
    pub component: String,
    /// All diagnostics, in deterministic order (method declaration order,
    /// then statement path, then check).
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Build a report: sorts into the deterministic order and drops exact
    /// duplicates. `method_order` is the component's method declaration
    /// order, so rendering follows the source.
    pub fn new(
        component: &str,
        mut diagnostics: Vec<Diagnostic>,
        method_order: &[String],
    ) -> AnalysisReport {
        let rank = |m: &str| {
            method_order
                .iter()
                .position(|x| x == m)
                .unwrap_or(method_order.len())
        };
        diagnostics.sort_by(|a, b| {
            (a.src_key(), rank(&a.method), a.sort_key())
                .cmp(&(b.src_key(), rank(&b.method), b.sort_key()))
        });
        diagnostics.dedup();
        AnalysisReport {
            component: component.to_string(),
            diagnostics,
        }
    }

    /// Attach source locations resolved by a frontend, then re-sort into
    /// the deterministic `(file, span, check)` rendering order. Stable:
    /// diagnostics `resolve` leaves without a location keep their existing
    /// declaration-order position relative to each other.
    pub fn attach_sources(&mut self, resolve: impl Fn(&Diagnostic) -> Option<SrcLoc>) {
        for d in &mut self.diagnostics {
            d.src = resolve(d);
        }
        // Stable sort on the source key alone: diagnostics left without a
        // location (all ties) keep their declaration-order positions.
        self.diagnostics.sort_by_key(|a| a.src_key());
    }

    /// Diagnostics at or above `min` severity.
    pub fn at_least(&self, min: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity >= min)
    }

    /// Number of diagnostics at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The distinct failure-class codes predicted at or above `min`
    /// severity.
    pub fn classes(&self, min: Severity) -> BTreeSet<String> {
        self.at_least(min).map(|d| d.class.code()).collect()
    }

    /// Stable identities of every diagnostic at or above `min` severity:
    /// `(check code, class code, method)`. Statement paths are deliberately
    /// excluded so a mutation that shifts statements does not change the
    /// identity of an unrelated pre-existing diagnostic.
    pub fn identities(&self, min: Severity) -> BTreeSet<(String, String, String)> {
        self.at_least(min)
            .map(|d| (d.check.code().to_string(), d.class.code(), d.method.clone()))
            .collect()
    }

    /// Render the report as human-readable text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Static analysis — {}: {} diagnostic(s) ({} high, {} medium, {} low)",
            self.component,
            self.diagnostics.len(),
            self.count(Severity::High),
            self.count(Severity::Medium),
            self.count(Severity::Low),
        );
        for d in &self.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
        if self.diagnostics.is_empty() {
            let _ = writeln!(out, "  (clean)");
        }
        out
    }

    /// The `jcc-analyze/v1` JSON document.
    pub fn to_json(&self) -> Json {
        let diags: Vec<Json> = self
            .diagnostics
            .iter()
            .map(|d| {
                let mut pairs = vec![
                    ("check".to_string(), Json::Str(d.check.code().to_string())),
                    ("class".to_string(), Json::Str(d.class.code())),
                    (
                        "severity".to_string(),
                        Json::Str(d.severity.name().to_string()),
                    ),
                    ("method".to_string(), Json::Str(d.method.clone())),
                    ("message".to_string(), Json::Str(d.message.clone())),
                ];
                if let Some(p) = &d.path {
                    pairs.push((
                        "path".to_string(),
                        Json::Arr(p.0.iter().map(|&s| Json::Num(s as f64)).collect()),
                    ));
                }
                // Frontend-attached source locations extend the record;
                // the DSL path has none, keeping its documents unchanged.
                if let Some(s) = &d.src {
                    pairs.push(("file".to_string(), Json::Str(s.file.clone())));
                    pairs.push(("line".to_string(), Json::Num(s.line as f64)));
                    pairs.push(("col".to_string(), Json::Num(s.col as f64)));
                    pairs.push((
                        "span".to_string(),
                        Json::Arr(vec![
                            Json::Num(s.span.0 as f64),
                            Json::Num(s.span.1 as f64),
                        ]),
                    ));
                }
                Json::obj(pairs)
            })
            .collect();
        Json::obj([
            ("schema".to_string(), Json::Str(SCHEMA.to_string())),
            ("component".to_string(), Json::Str(self.component.clone())),
            (
                "counts".to_string(),
                Json::obj([
                    ("high".to_string(), Json::Num(self.count(Severity::High) as f64)),
                    (
                        "medium".to_string(),
                        Json::Num(self.count(Severity::Medium) as f64),
                    ),
                    ("low".to_string(), Json::Num(self.count(Severity::Low) as f64)),
                ]),
            ),
            ("diagnostics".to_string(), Json::Arr(diags)),
        ])
    }

    /// The JSON document as a pretty-printed string (byte-identical across
    /// runs for the same component — asserted by the determinism tests).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_petri::{Deviation, Transition};

    fn diag(method: &str, path: Option<Vec<usize>>, check: CheckId) -> Diagnostic {
        Diagnostic {
            check,
            class: FailureClass::new(Deviation::FailureToFire, Transition::T5),
            severity: Severity::High,
            src: None,
            method: method.to_string(),
            path: path.map(StmtPath),
            message: "m".into(),
        }
    }

    #[test]
    fn severities_order() {
        assert!(Severity::High > Severity::Medium);
        assert!(Severity::Medium > Severity::Low);
    }

    #[test]
    fn check_codes_are_unique() {
        let codes: BTreeSet<_> = CheckId::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(codes.len(), CheckId::ALL.len());
    }

    #[test]
    fn report_orders_by_method_declaration_then_path() {
        let order = vec!["b".to_string(), "a".to_string()];
        let r = AnalysisReport::new(
            "C",
            vec![
                diag("a", Some(vec![0]), CheckId::WaitNotInLoop),
                diag("b", Some(vec![2]), CheckId::WaitNotInLoop),
                diag("b", Some(vec![0]), CheckId::WaitNotInLoop),
                diag("b", Some(vec![0]), CheckId::WaitNotInLoop), // duplicate
            ],
            &order,
        );
        assert_eq!(r.diagnostics.len(), 3);
        assert_eq!(r.diagnostics[0].method, "b");
        assert_eq!(r.diagnostics[0].path, Some(StmtPath(vec![0])));
        assert_eq!(r.diagnostics[2].method, "a");
    }

    #[test]
    fn json_has_schema_and_counts() {
        let r = AnalysisReport::new("C", vec![diag("m", None, CheckId::NoNotifierForWait)], &[]);
        let j = r.to_json();
        assert_eq!(j.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(
            j.get("counts").unwrap().get("high").unwrap().as_u64(),
            Some(1)
        );
        let d = &j.get("diagnostics").unwrap().as_arr().unwrap()[0];
        assert_eq!(d.get("check").unwrap().as_str(), Some("no-notifier-for-wait"));
        assert_eq!(d.get("class").unwrap().as_str(), Some("FF-T5"));
    }

    #[test]
    fn attach_sources_resorts_by_file_span_check() {
        let order = vec!["a".to_string(), "b".to_string()];
        let mut r = AnalysisReport::new(
            "C",
            vec![
                diag("a", Some(vec![0]), CheckId::WaitNotInLoop),
                diag("b", Some(vec![1]), CheckId::UnconditionalWait),
                diag("b", Some(vec![2]), CheckId::NoNotifierForWait),
            ],
            &order,
        );
        // Give method `b`'s diagnostics earlier spans than `a`'s: the
        // source order must win over declaration order after attachment.
        r.attach_sources(|d| {
            let lo = match (d.method.as_str(), d.check) {
                ("b", CheckId::UnconditionalWait) => 10,
                ("b", CheckId::NoNotifierForWait) => 10, // same span: check breaks the tie
                _ => 90,
            };
            Some(SrcLoc {
                file: "Foo.java".into(),
                line: 1 + lo / 10,
                col: 1,
                span: (lo, lo + 4),
            })
        });
        let got: Vec<(&str, CheckId)> = r
            .diagnostics
            .iter()
            .map(|d| (d.method.as_str(), d.check))
            .collect();
        assert_eq!(
            got,
            vec![
                ("b", CheckId::UnconditionalWait),
                ("b", CheckId::NoNotifierForWait),
                ("a", CheckId::WaitNotInLoop),
            ]
        );
        let j = r.to_json();
        let d0 = &j.get("diagnostics").unwrap().as_arr().unwrap()[0];
        assert_eq!(d0.get("file").unwrap().as_str(), Some("Foo.java"));
        assert_eq!(d0.get("line").unwrap().as_u64(), Some(2));
        assert_eq!(d0.get("col").unwrap().as_u64(), Some(1));
        let span = d0.get("span").unwrap().as_arr().unwrap();
        assert_eq!(span[0].as_u64(), Some(10));
        assert_eq!(span[1].as_u64(), Some(14));
    }

    #[test]
    fn sourceless_reports_render_and_serialize_exactly_as_before() {
        let order = vec!["b".to_string(), "a".to_string()];
        let diags = vec![
            diag("a", Some(vec![0]), CheckId::WaitNotInLoop),
            diag("b", Some(vec![2]), CheckId::WaitNotInLoop),
        ];
        let r = AnalysisReport::new("C", diags.clone(), &order);
        // All-None src keys tie, so declaration order still decides; and
        // the JSON document carries no file/line/col/span keys.
        assert_eq!(r.diagnostics[0].method, "b");
        assert!(!r.to_json_string().contains("\"file\""));
        let mut attached = r.clone();
        attached.attach_sources(|_| None);
        assert_eq!(attached.render(), r.render());
        assert_eq!(attached.to_json_string(), r.to_json_string());
    }

    #[test]
    fn display_mentions_location_and_class() {
        let d = diag("m", Some(vec![1, 0]), CheckId::MissedNotification);
        let s = d.to_string();
        assert!(s.contains("m@[1.0]"), "{s}");
        assert!(s.contains("FF-T5"), "{s}");
        assert!(s.contains("missed-notification"), "{s}");
    }
}
