//! Lock identity: resolving [`LockRef`]s through the component's
//! declared-lock table into dense ids.
//!
//! Java monitors are objects, and two textual references are the same
//! monitor exactly when they resolve to the same object. In the MIR the
//! candidates are `this` and the component's declared auxiliary locks, so
//! identity reduces to a small dense index: `this` is id 0, the `i`-th
//! declared lock is id `1 + i`. Dense ids give the analyzer `Ord`/`Copy`
//! lock handles (which `LockRef` lacks) for lattice maps, `BTreeSet`
//! dedup, and lock-order graph nodes.

use jcc_model::ast::{Component, LockRef};

/// Dense identity of a monitor inside one component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub usize);

impl LockId {
    /// The implicit receiver monitor (`this`).
    pub const THIS: LockId = LockId(0);
}

/// The component's monitors: `this` plus the declared auxiliary locks.
#[derive(Debug, Clone)]
pub struct LockTable {
    names: Vec<String>,
}

impl LockTable {
    /// Build the table from a component's declared locks.
    pub fn new(component: &Component) -> LockTable {
        let mut names = Vec::with_capacity(component.locks.len() + 1);
        names.push("this".to_string());
        names.extend(component.locks.iter().cloned());
        LockTable { names }
    }

    /// Resolve a [`LockRef`] to its dense id. `None` means the reference
    /// names a lock the component never declared (a validation error
    /// upstream; the analyzer treats it as a distinct unknown monitor and
    /// skips lock-identity reasoning on it).
    pub fn resolve(&self, lock: &LockRef) -> Option<LockId> {
        match lock {
            LockRef::This => Some(LockId::THIS),
            LockRef::Named(n) => self
                .names
                .iter()
                .skip(1)
                .position(|name| name == n)
                .map(|i| LockId(i + 1)),
        }
    }

    /// The display name of a lock id.
    pub fn name(&self, id: LockId) -> &str {
        &self.names[id.0]
    }

    /// Number of monitors (always ≥ 1: `this`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Never empty, but clippy insists the pair exists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All lock ids in declaration order.
    pub fn ids(&self) -> impl Iterator<Item = LockId> {
        (0..self.names.len()).map(LockId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_model::ast::Component;

    fn component_with_locks(locks: &[&str]) -> Component {
        Component {
            name: "C".into(),
            locks: locks.iter().map(|s| s.to_string()).collect(),
            fields: vec![],
            methods: vec![],
        }
    }

    #[test]
    fn this_is_id_zero_and_names_follow_declaration_order() {
        let t = LockTable::new(&component_with_locks(&["a", "b"]));
        assert_eq!(t.resolve(&LockRef::This), Some(LockId(0)));
        assert_eq!(t.resolve(&LockRef::Named("a".into())), Some(LockId(1)));
        assert_eq!(t.resolve(&LockRef::Named("b".into())), Some(LockId(2)));
        assert_eq!(t.name(LockId(0)), "this");
        assert_eq!(t.name(LockId(2)), "b");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn undeclared_lock_does_not_resolve() {
        let t = LockTable::new(&component_with_locks(&["a"]));
        assert_eq!(t.resolve(&LockRef::Named("ghost".into())), None);
    }

    #[test]
    fn a_lock_named_this_is_not_the_receiver() {
        // A declared auxiliary lock that happens to be *named* "this" is a
        // different monitor from the receiver — exactly the confusion the
        // old to_string() comparison in model::validate::lints had.
        let t = LockTable::new(&component_with_locks(&["this"]));
        assert_eq!(t.resolve(&LockRef::This), Some(LockId(0)));
        assert_eq!(t.resolve(&LockRef::Named("this".into())), Some(LockId(1)));
    }
}
