//! Fair and barging counting-semaphore variants, as monitors.
//!
//! `java.util.concurrent.Semaphore` exposes the same policy split: the
//! fair variant hands permits out in arrival order, the nonfair variant
//! lets a late `tryAcquire` barge past parked waiters.
//!
//! * [`fair_semaphore`] implements FIFO handoff with a ticket dispenser:
//!   every waiter re-checks both its turn (`ticket != nowServing`) and
//!   availability, so each release must broadcast — a single `notify`
//!   (FF-T5 mutant) can wake the wrong ticket holder and strand the right
//!   one, which is exactly the heterogeneous-waiter hazard the analyzer's
//!   notify checks describe.
//! * [`barging_semaphore`] adds `tryAcquire`, which never waits and can
//!   steal a permit between a release and the woken waiter's re-check —
//!   legal here, and the behavioural contrast with the fair variant.

use jcc_model::ast::Component;

use super::parse_checked;

/// Monitor IR source for the ticket-FIFO fair semaphore.
pub const FAIR_SEMAPHORE_SRC: &str = r#"
class FairSemaphore {
  var permits: int = 1;
  var nextTicket: int = 0;
  var nowServing: int = 0;

  // take a ticket, then wait for both turn and permit
  synchronized fn acquire() {
    let ticket: int = nextTicket;
    nextTicket = nextTicket + 1;
    while (ticket != nowServing || permits == 0) {
      wait;
    }
    nowServing = nowServing + 1;
    permits = permits - 1;
    notifyAll;
  }

  synchronized fn release() {
    permits = permits + 1;
    notifyAll;
  }
}
"#;

/// Monitor IR source for the barging (nonfair) semaphore.
pub const BARGING_SEMAPHORE_SRC: &str = r#"
class BargingSemaphore {
  var permits: int = 1;

  synchronized fn acquire() {
    while (permits == 0) {
      wait;
    }
    permits = permits - 1;
  }

  // barge: never waits, may steal ahead of parked acquirers
  synchronized fn tryAcquire() -> bool {
    if (permits > 0) {
      permits = permits - 1;
      return true;
    }
    return false;
  }

  synchronized fn release() {
    permits = permits + 1;
    notifyAll;
  }
}
"#;

/// Parse the fair (ticket-FIFO) semaphore monitor.
pub fn fair_semaphore() -> Component {
    parse_checked(FAIR_SEMAPHORE_SRC)
}

/// Parse the barging (nonfair) semaphore monitor.
pub fn barging_semaphore() -> Component {
    parse_checked(BARGING_SEMAPHORE_SRC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_vm::{compile, explore, CallSpec, ExploreConfig, ThreadSpec, Vm};

    fn session(name: &str, calls: Vec<CallSpec>) -> ThreadSpec {
        ThreadSpec {
            name: name.into(),
            calls,
        }
    }

    #[test]
    fn fair_semaphore_two_contenders_complete() {
        let c = fair_semaphore();
        let vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                session(
                    "a",
                    vec![
                        CallSpec::new("acquire", vec![]),
                        CallSpec::new("release", vec![]),
                    ],
                ),
                session(
                    "b",
                    vec![
                        CallSpec::new("acquire", vec![]),
                        CallSpec::new("release", vec![]),
                    ],
                ),
            ],
        );
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(r.completed_paths > 0);
        assert!(!r.found_failure(), "FIFO handoff must serve both tickets");
    }

    #[test]
    fn barging_semaphore_try_acquire_never_blocks() {
        let c = barging_semaphore();
        let vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                session(
                    "holder",
                    vec![
                        CallSpec::new("acquire", vec![]),
                        CallSpec::new("release", vec![]),
                    ],
                ),
                // tryAcquire itself never blocks: it either barges the
                // permit or reports false. (The paired release keeps the
                // schedule deadlock-free when the barge wins.)
                session(
                    "barger",
                    vec![
                        CallSpec::new("tryAcquire", vec![]),
                        CallSpec::new("release", vec![]),
                    ],
                ),
            ],
        );
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(r.completed_paths > 0);
        assert!(!r.found_failure());
    }

    #[test]
    fn variants_share_the_release_contract() {
        for c in [fair_semaphore(), barging_semaphore()] {
            let release = c.method("release").unwrap();
            assert!(release.synchronized, "{}", c.name);
        }
    }
}
