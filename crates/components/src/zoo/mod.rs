//! The `java.util.concurrent`-shaped component zoo.
//!
//! Seven additional monitor families modelled on the jpf-concurrent target
//! set (the real `java.util.concurrent` classes the JPF extension verifies
//! against): a thread pool with a bounded work queue, a one-shot future /
//! completion latch, a cyclic barrier with generations and breakage, fair
//! and barging counting-semaphore variants, a read–write lock with
//! upgrade/downgrade, a two-party exchanger, and a bounded stack.
//!
//! Every zoo entry is a Monitor IR component in the same DSL as
//! [`jcc_model::examples`]: it parses, validates, earns **zero High**
//! diagnostics from the static analyzer (the clean-corpus gate), compiles
//! for the VM, and contributes its mutant family to the E5/E10 evaluation
//! surface via [`full_corpus`].
//!
//! The zoo deliberately does **not** extend [`jcc_model::examples::corpus`]
//! — that set is frozen at the five seed monitors several tests and
//! baselines depend on. Harnesses that want the doubled surface opt in
//! through [`full_corpus`].

pub mod bounded_stack;
pub mod cyclic_barrier;
pub mod exchanger;
pub mod future;
pub mod rw_lock;
pub mod semaphores;
pub mod thread_pool;

use jcc_model::ast::Component;
use jcc_model::{examples, parse_component, validate};

/// Parse a zoo source, asserting it is well-formed Monitor IR.
pub(crate) fn parse_checked(src: &str) -> Component {
    let c = parse_component(src).expect("zoo source parses");
    let errors = validate::validate(&c);
    assert!(errors.is_empty(), "zoo source invalid: {errors:?}");
    c
}

/// The zoo components (name, component), in registration order.
pub fn zoo() -> Vec<(&'static str, Component)> {
    vec![
        ("ThreadPool", thread_pool::thread_pool()),
        ("FutureCell", future::future_cell()),
        ("CyclicBarrier", cyclic_barrier::cyclic_barrier()),
        ("FairSemaphore", semaphores::fair_semaphore()),
        ("BargingSemaphore", semaphores::barging_semaphore()),
        ("ReadWriteLock", rw_lock::read_write_lock()),
        ("Exchanger", exchanger::exchanger()),
        ("BoundedStack", bounded_stack::bounded_stack()),
    ]
}

/// The full evaluation corpus: the five seed monitors from
/// [`jcc_model::examples::corpus`] followed by the zoo — the surface the
/// E5/E10 harnesses score.
pub fn full_corpus() -> Vec<(&'static str, Component)> {
    let mut all = examples::corpus();
    all.extend(zoo());
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_analyze::{analyze, Severity};
    use jcc_model::ast::{visit_stmts, Stmt};
    use jcc_model::mutate::all_mutants;

    #[test]
    fn zoo_has_eight_components_and_full_corpus_thirteen() {
        assert_eq!(zoo().len(), 8);
        assert_eq!(full_corpus().len(), 13);
        let names: std::collections::BTreeSet<_> =
            full_corpus().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 13, "corpus names must be unique");
    }

    #[test]
    fn every_zoo_component_uses_guarded_waits() {
        for (name, c) in zoo() {
            let mut waits = 0;
            for m in &c.methods {
                visit_stmts(&m.body, &mut |s| {
                    if matches!(s, Stmt::Wait { .. }) {
                        waits += 1;
                    }
                });
            }
            assert!(waits > 0, "{name} should use wait");
        }
    }

    #[test]
    fn clean_zoo_earns_zero_high_severity_diagnostics() {
        for (name, c) in zoo() {
            let report = analyze(&c);
            assert_eq!(
                report.count(Severity::High),
                0,
                "{name} (correct) got High diagnostics:\n{}",
                report.render()
            );
        }
    }

    #[test]
    fn full_corpus_enumerates_at_least_two_hundred_mutants() {
        let total: usize = full_corpus()
            .iter()
            .map(|(_, c)| all_mutants(c).len())
            .sum();
        assert!(total >= 200, "only {total} mutants across the full corpus");
    }

    #[test]
    fn every_zoo_component_builds_cofgs_with_wait_arcs() {
        for (name, c) in zoo() {
            let cofgs = jcc_cofg::build_component_cofgs(&c);
            assert_eq!(cofgs.len(), c.methods.len(), "{name}: missing method CoFGs");
            let arcs: usize = cofgs.iter().map(|g| g.arcs.len()).sum();
            assert!(arcs > 0, "{name}: empty CoFG");
            let wait_nodes: usize = cofgs
                .iter()
                .flat_map(|g| g.nodes.iter())
                .filter(|n| matches!(n.kind, jcc_cofg::NodeKind::Wait))
                .count();
            assert!(wait_nodes > 0, "{name}: CoFGs carry no wait nodes");
        }
    }

    #[test]
    fn every_zoo_component_compiles_for_the_vm() {
        for (name, c) in zoo() {
            jcc_vm::compile(&c).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        }
    }
}
