//! A thread pool with a bounded work queue, as a monitor.
//!
//! `java.util.concurrent.ThreadPoolExecutor` reduced to its monitor core:
//! producers `submit` work into a bounded queue (blocking while it is
//! full), workers `runTask` (blocking while it is empty), and
//! `shutdownNow` wakes everybody so blocked submitters bail out with
//! `false` and drained workers exit their loop.
//!
//! Failure-class surface (Table 1): the wait loops in `submit`/`runTask`
//! are FF-T5/EF-T5 territory (lost or spurious wake-ups), the shared
//! `queued` counter is FF-T1 under a dropped `synchronized`, and the
//! shutdown broadcast is the classic missed-notification FF-T5 seed.

use jcc_model::ast::Component;

use super::parse_checked;

/// Monitor IR source for the thread pool.
pub const THREAD_POOL_SRC: &str = r#"
class ThreadPool {
  var queued: int = 0;
  var capacity: int = 2;
  var shutdown: bool = false;
  var executed: int = 0;

  // enqueue one task; false once the pool is shut down
  synchronized fn submit() -> bool {
    while (queued == capacity && !shutdown) {
      wait;
    }
    if (shutdown) {
      return false;
    }
    queued = queued + 1;
    notifyAll;
    return true;
  }

  // take and execute one task; false once drained after shutdown
  synchronized fn runTask() -> bool {
    while (queued == 0 && !shutdown) {
      wait;
    }
    if (queued == 0) {
      return false;
    }
    queued = queued - 1;
    executed = executed + 1;
    notifyAll;
    return true;
  }

  // wake every blocked submitter and worker
  synchronized fn shutdownNow() {
    shutdown = true;
    notifyAll;
  }
}
"#;

/// Parse the thread-pool monitor.
pub fn thread_pool() -> Component {
    parse_checked(THREAD_POOL_SRC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_vm::{compile, explore, CallSpec, ExploreConfig, ThreadSpec, Vm};

    #[test]
    fn shape() {
        let c = thread_pool();
        assert_eq!(c.methods.len(), 3);
        assert!(c.methods.iter().all(|m| m.synchronized));
        assert_eq!(c.fields.len(), 4);
    }

    #[test]
    fn submit_then_run_completes_on_every_interleaving() {
        let c = thread_pool();
        let vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                ThreadSpec {
                    name: "producer".into(),
                    calls: vec![CallSpec::new("submit", vec![])],
                },
                ThreadSpec {
                    name: "worker".into(),
                    calls: vec![CallSpec::new("runTask", vec![])],
                },
            ],
        );
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(r.completed_paths > 0);
        assert!(!r.found_failure(), "clean pool must not fail");
    }

    #[test]
    fn shutdown_unblocks_a_starved_worker() {
        // A lone worker with no producer deadlocks; adding shutdownNow
        // removes every stuck path.
        let c = thread_pool();
        let compiled = compile(&c).unwrap();
        let starved = Vm::new(
            compiled.clone(),
            vec![ThreadSpec {
                name: "worker".into(),
                calls: vec![CallSpec::new("runTask", vec![])],
            }],
        );
        let r = explore(starved, &ExploreConfig::default(), None);
        assert!(r.deadlock_paths > 0, "worker without work must hang");
        let rescued = Vm::new(
            compiled,
            vec![
                ThreadSpec {
                    name: "worker".into(),
                    calls: vec![CallSpec::new("runTask", vec![])],
                },
                ThreadSpec {
                    name: "boss".into(),
                    calls: vec![CallSpec::new("shutdownNow", vec![])],
                },
            ],
        );
        let r = explore(rescued, &ExploreConfig::default(), None);
        assert!(r.completed_paths > 0);
        assert!(!r.found_failure(), "shutdown must wake the worker");
    }
}
