//! A two-party exchanger, as a monitor.
//!
//! `java.util.concurrent.Exchanger` for integer items: the first arrival
//! deposits its item and waits; the second pairs with it, hands over its
//! own item and takes the first one; the first arrival wakes, takes the
//! partner's item and reopens the slot. A three-phase state machine
//! (`phase` 0 = empty, 1 = one party waiting, 2 = pair complete, first
//! party not yet woken) keeps a third thread from barging into a
//! half-finished exchange.
//!
//! With its two distinct wait sites inside one method, the exchanger is
//! the zoo's densest wait/notify surface: every mutation of either loop
//! (skip, if-for-while, negate) breaks the pairing protocol observably.

use jcc_model::ast::Component;

use super::parse_checked;

/// Monitor IR source for the exchanger.
pub const EXCHANGER_SRC: &str = r#"
class Exchanger {
  var phase: int = 0;
  var itemA: int = 0;
  var itemB: int = 0;

  // swap v with the partner's item; blocks until a partner arrives
  synchronized fn exchange(v: int) -> int {
    while (phase == 2) {
      wait;
    }
    if (phase == 0) {
      itemA = v;
      phase = 1;
      notifyAll;
      while (phase == 1) {
        wait;
      }
      let got: int = itemB;
      phase = 0;
      notifyAll;
      return got;
    }
    itemB = v;
    phase = 2;
    notifyAll;
    return itemA;
  }
}
"#;

/// Parse the exchanger monitor.
pub fn exchanger() -> Component {
    parse_checked(EXCHANGER_SRC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_vm::{compile, explore, CallSpec, ExploreConfig, ThreadSpec, Value, Vm};

    fn party(name: &str, item: i64) -> ThreadSpec {
        ThreadSpec {
            name: name.into(),
            calls: vec![CallSpec::new("exchange", vec![Value::Int(item)])],
        }
    }

    #[test]
    fn shape() {
        let c = exchanger();
        assert_eq!(c.methods.len(), 1);
        let m = &c.methods[0];
        assert!(m.synchronized);
        let mut waits = 0;
        jcc_model::ast::visit_stmts(&m.body, &mut |s| {
            if matches!(s, jcc_model::ast::Stmt::Wait { .. }) {
                waits += 1;
            }
        });
        assert_eq!(waits, 2, "exchange carries two distinct wait sites");
    }

    #[test]
    fn a_pair_always_swaps() {
        let c = exchanger();
        let vm = Vm::new(
            compile(&c).unwrap(),
            vec![party("a", 1), party("b", 2)],
        );
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(r.completed_paths > 0);
        assert!(!r.found_failure(), "a pair must always complete the swap");
    }

    #[test]
    fn an_odd_party_waits_forever() {
        let c = exchanger();
        let vm = Vm::new(compile(&c).unwrap(), vec![party("a", 1)]);
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(r.deadlock_paths > 0, "an unpaired party must block");
        assert_eq!(r.completed_paths, 0);
    }

    #[test]
    fn two_pairs_complete_back_to_back() {
        let c = exchanger();
        let vm = Vm::new(
            compile(&c).unwrap(),
            vec![party("a", 1), party("b", 2), party("c", 3), party("d", 4)],
        );
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(r.completed_paths > 0);
        assert!(!r.found_failure(), "four parties must form two full pairs");
    }
}
