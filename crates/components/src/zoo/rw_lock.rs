//! A read–write lock with upgrade/downgrade, as a monitor.
//!
//! `java.util.concurrent.locks.ReentrantReadWriteLock` reduced to its
//! monitor core, plus the upgrade path the Java class deliberately omits:
//! `upgrade` turns a held read lock into the write lock by announcing
//! intent (`upgrading`, which blocks new readers and writers) and waiting
//! for the *other* readers to drain; `downgrade` converts the write lock
//! back without releasing the monitor's exclusion.
//!
//! Two upgraders deadlock each other by design (each waits for the other
//! to drop its read lock) — the directed scenarios therefore use at most
//! one upgrader, and that two-upgrader schedule is left as a true FF-T2
//! behaviour rather than a bug in the component.

use jcc_model::ast::Component;

use super::parse_checked;

/// Monitor IR source for the read–write lock.
pub const READ_WRITE_LOCK_SRC: &str = r#"
class ReadWriteLock {
  var readers: int = 0;
  var writing: bool = false;
  var upgrading: int = 0;

  synchronized fn lockRead() {
    while (writing || upgrading > 0) {
      wait;
    }
    readers = readers + 1;
  }

  synchronized fn unlockRead() {
    readers = readers - 1;
    notifyAll;
  }

  synchronized fn lockWrite() {
    while (writing || readers > 0 || upgrading > 0) {
      wait;
    }
    writing = true;
  }

  synchronized fn unlockWrite() {
    writing = false;
    notifyAll;
  }

  // turn a held read lock into the write lock
  synchronized fn upgrade() {
    upgrading = upgrading + 1;
    while (writing || readers > 1) {
      wait;
    }
    upgrading = upgrading - 1;
    readers = readers - 1;
    writing = true;
  }

  // turn the held write lock back into a read lock
  synchronized fn downgrade() {
    writing = false;
    readers = readers + 1;
    notifyAll;
  }
}
"#;

/// Parse the read–write-lock monitor.
pub fn read_write_lock() -> Component {
    parse_checked(READ_WRITE_LOCK_SRC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_vm::{compile, explore, CallSpec, ExploreConfig, ThreadSpec, Vm};

    fn session(name: &str, methods: &[&str]) -> ThreadSpec {
        ThreadSpec {
            name: name.into(),
            calls: methods.iter().map(|m| CallSpec::new(*m, vec![])).collect(),
        }
    }

    #[test]
    fn shape() {
        let c = read_write_lock();
        assert_eq!(c.methods.len(), 6);
        assert!(c.methods.iter().all(|m| m.synchronized));
    }

    #[test]
    fn reader_and_writer_sessions_complete() {
        let c = read_write_lock();
        let vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                session("r", &["lockRead", "unlockRead"]),
                session("w", &["lockWrite", "unlockWrite"]),
            ],
        );
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(r.completed_paths > 0);
        assert!(!r.found_failure());
    }

    #[test]
    fn upgrade_waits_for_other_readers_then_completes() {
        let c = read_write_lock();
        let vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                session("u", &["lockRead", "upgrade", "unlockWrite"]),
                session("r", &["lockRead", "unlockRead"]),
            ],
        );
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(r.completed_paths > 0);
        assert!(!r.found_failure(), "single upgrader must drain and win");
    }

    #[test]
    fn downgrade_readmits_readers_without_a_gap() {
        let c = read_write_lock();
        let vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                session("w", &["lockWrite", "downgrade", "unlockRead"]),
                session("r", &["lockRead", "unlockRead"]),
            ],
        );
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(r.completed_paths > 0);
        assert!(!r.found_failure());
    }

    #[test]
    fn two_upgraders_deadlock_by_design() {
        let c = read_write_lock();
        let vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                session("u1", &["lockRead", "upgrade", "unlockWrite"]),
                session("u2", &["lockRead", "upgrade", "unlockWrite"]),
            ],
        );
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(
            r.deadlock_paths > 0,
            "both readers upgrading must be able to cross-block"
        );
    }
}
