//! A bounded blocking stack, as a monitor.
//!
//! The LIFO sibling of the seed corpus `BoundedBuffer`: `push` blocks
//! while the stack is at capacity, `pop` blocks while it is empty, and
//! both broadcast after changing `top` because pushers and poppers wait on
//! *opposite* predicates — the textbook heterogeneous-waiter monitor. A
//! `notify`-for-`notifyAll` mutation here can wake a same-kind waiter and
//! strand the opposite kind (FF-T5), which is precisely the scenario the
//! analyzer's `notify-single-heterogeneous` heuristic describes.

use jcc_model::ast::Component;

use super::parse_checked;

/// Monitor IR source for the bounded stack.
pub const BOUNDED_STACK_SRC: &str = r#"
class BoundedStack {
  var top: int = 0;
  var capacity: int = 3;
  var last: int = 0;

  // push v; blocks while the stack is full
  synchronized fn push(v: int) {
    while (top == capacity) {
      wait;
    }
    last = v;
    top = top + 1;
    notifyAll;
  }

  // pop; blocks while the stack is empty, returns the new depth
  synchronized fn pop() -> int {
    while (top == 0) {
      wait;
    }
    top = top - 1;
    notifyAll;
    return top;
  }
}
"#;

/// Parse the bounded-stack monitor.
pub fn bounded_stack() -> Component {
    parse_checked(BOUNDED_STACK_SRC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_vm::{compile, explore, CallSpec, ExploreConfig, ThreadSpec, Value, Vm};

    #[test]
    fn shape() {
        let c = bounded_stack();
        assert_eq!(c.methods.len(), 2);
        assert!(c.methods.iter().all(|m| m.synchronized));
    }

    #[test]
    fn balanced_pushes_and_pops_complete() {
        let c = bounded_stack();
        let vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                ThreadSpec {
                    name: "producer".into(),
                    calls: vec![
                        CallSpec::new("push", vec![Value::Int(1)]),
                        CallSpec::new("push", vec![Value::Int(2)]),
                    ],
                },
                ThreadSpec {
                    name: "consumer".into(),
                    calls: vec![
                        CallSpec::new("pop", vec![]),
                        CallSpec::new("pop", vec![]),
                    ],
                },
            ],
        );
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(r.completed_paths > 0);
        assert!(!r.found_failure(), "balanced traffic must drain cleanly");
    }

    #[test]
    fn pop_on_empty_blocks_until_a_push() {
        let c = bounded_stack();
        let compiled = compile(&c).unwrap();
        let starved = Vm::new(
            compiled.clone(),
            vec![ThreadSpec {
                name: "consumer".into(),
                calls: vec![CallSpec::new("pop", vec![])],
            }],
        );
        let r = explore(starved, &ExploreConfig::default(), None);
        assert!(r.deadlock_paths > 0, "empty pop must block forever");
        let fed = Vm::new(
            compiled,
            vec![
                ThreadSpec {
                    name: "consumer".into(),
                    calls: vec![CallSpec::new("pop", vec![])],
                },
                ThreadSpec {
                    name: "producer".into(),
                    calls: vec![CallSpec::new("push", vec![Value::Int(7)])],
                },
            ],
        );
        let r = explore(fed, &ExploreConfig::default(), None);
        assert!(r.completed_paths > 0);
        assert!(!r.found_failure());
    }
}
