//! A one-shot future / completion latch, as a monitor.
//!
//! The monitor core of `java.util.concurrent.FutureTask` (equally, a
//! single-count `CountDownLatch` carrying a value): `complete` publishes a
//! value exactly once and wakes every getter; `get` blocks until the value
//! is published; `isDone` polls. Completion is idempotent — a second
//! `complete` keeps the first value but still broadcasts, which is what
//! makes the single `notifyAll` the component's FF-T5 pressure point:
//! dropping it strands every getter forever.

use jcc_model::ast::Component;

use super::parse_checked;

/// Monitor IR source for the future cell.
pub const FUTURE_CELL_SRC: &str = r#"
class FutureCell {
  var done: bool = false;
  var value: int = 0;

  // publish the result exactly once and wake all getters
  synchronized fn complete(v: int) {
    if (!done) {
      value = v;
      done = true;
    }
    notifyAll;
  }

  // block until the result is published
  synchronized fn get() -> int {
    while (!done) {
      wait;
    }
    return value;
  }

  synchronized fn isDone() -> bool {
    return done;
  }
}
"#;

/// Parse the future-cell monitor.
pub fn future_cell() -> Component {
    parse_checked(FUTURE_CELL_SRC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_vm::{compile, explore, CallSpec, ExploreConfig, ThreadSpec, Value, Vm};

    #[test]
    fn shape() {
        let c = future_cell();
        assert_eq!(c.methods.len(), 3);
        assert!(c.methods.iter().all(|m| m.synchronized));
    }

    #[test]
    fn get_blocks_until_complete_on_every_interleaving() {
        let c = future_cell();
        let vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                ThreadSpec {
                    name: "getter".into(),
                    calls: vec![CallSpec::new("get", vec![])],
                },
                ThreadSpec {
                    name: "setter".into(),
                    calls: vec![CallSpec::new("complete", vec![Value::Int(42)])],
                },
            ],
        );
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(r.completed_paths > 0);
        assert!(!r.found_failure(), "completed future must release getters");
    }

    #[test]
    fn double_complete_is_idempotent_and_still_wakes() {
        let c = future_cell();
        let vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                ThreadSpec {
                    name: "g".into(),
                    calls: vec![CallSpec::new("get", vec![])],
                },
                ThreadSpec {
                    name: "s1".into(),
                    calls: vec![CallSpec::new("complete", vec![Value::Int(1)])],
                },
                ThreadSpec {
                    name: "s2".into(),
                    calls: vec![CallSpec::new("complete", vec![Value::Int(2)])],
                },
            ],
        );
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(r.completed_paths > 0);
        assert!(!r.found_failure());
    }
}
