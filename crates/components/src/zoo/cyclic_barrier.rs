//! A cyclic barrier with generations and breakage, as a monitor.
//!
//! `java.util.concurrent.CyclicBarrier` for a fixed party count of two:
//! `await` stamps the current generation, and the last arrival rolls the
//! generation and broadcasts; earlier arrivals wait until either the
//! generation advances or the barrier is broken. `reset` breaks the
//! current generation (waking its waiters) and `repair` re-arms the
//! barrier. The generation counter is what distinguishes this from the
//! seed corpus `Barrier`: waking into the *same* generation re-checks and
//! re-waits, so an `if`-for-`while` mutant (EF-T5) is observably wrong.

use jcc_model::ast::Component;

use super::parse_checked;

/// Monitor IR source for the cyclic barrier.
pub const CYCLIC_BARRIER_SRC: &str = r#"
class CyclicBarrier {
  var parties: int = 2;
  var arrived: int = 0;
  var generation: int = 0;
  var broken: bool = false;

  // block until all parties arrive; returns the generation entered
  synchronized fn await() -> int {
    let gen: int = generation;
    arrived = arrived + 1;
    if (arrived == parties) {
      arrived = 0;
      generation = generation + 1;
      notifyAll;
      return gen;
    }
    while (generation == gen && !broken) {
      wait;
    }
    return gen;
  }

  // break the current generation, waking and failing its waiters
  synchronized fn reset() {
    broken = true;
    arrived = 0;
    generation = generation + 1;
    notifyAll;
  }

  // re-arm a broken barrier
  synchronized fn repair() {
    broken = false;
    notifyAll;
  }
}
"#;

/// Parse the cyclic-barrier monitor.
pub fn cyclic_barrier() -> Component {
    parse_checked(CYCLIC_BARRIER_SRC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_vm::{compile, explore, CallSpec, ExploreConfig, ThreadSpec, Vm};

    #[test]
    fn shape() {
        let c = cyclic_barrier();
        assert_eq!(c.methods.len(), 3);
        assert!(c.methods.iter().all(|m| m.synchronized));
        assert_eq!(c.fields.len(), 4);
    }

    #[test]
    fn two_parties_meet_on_every_interleaving() {
        let c = cyclic_barrier();
        let vm = Vm::new(
            compile(&c).unwrap(),
            vec![
                ThreadSpec {
                    name: "a".into(),
                    calls: vec![CallSpec::new("await", vec![])],
                },
                ThreadSpec {
                    name: "b".into(),
                    calls: vec![CallSpec::new("await", vec![])],
                },
            ],
        );
        let r = explore(vm, &ExploreConfig::default(), None);
        assert!(r.completed_paths > 0);
        assert!(!r.found_failure(), "a full generation must release");
    }

    #[test]
    fn reset_releases_a_lone_waiter() {
        let c = cyclic_barrier();
        let compiled = compile(&c).unwrap();
        let stuck = Vm::new(
            compiled.clone(),
            vec![ThreadSpec {
                name: "a".into(),
                calls: vec![CallSpec::new("await", vec![])],
            }],
        );
        let r = explore(stuck, &ExploreConfig::default(), None);
        assert!(r.deadlock_paths > 0, "a lone party must wait forever");
        let released = Vm::new(
            compiled,
            vec![
                ThreadSpec {
                    name: "a".into(),
                    calls: vec![CallSpec::new("await", vec![])],
                },
                ThreadSpec {
                    name: "breaker".into(),
                    calls: vec![CallSpec::new("reset", vec![])],
                },
            ],
        );
        let r = explore(released, &ExploreConfig::default(), None);
        assert!(r.completed_paths > 0);
        assert!(!r.found_failure(), "reset must wake the waiter");
    }
}
