//! The paper's Figure-2 component, natively: an asymmetric producer–consumer
//! monitor. `send` stores a whole string; `receive` drains it one character
//! at a time. Both methods are synchronized on the component's monitor and
//! use the wait-in-a-while-loop idiom with `notifyAll`.
//!
//! [`PcFaults`] injects the same failure classes the model-level mutation
//! operators seed, so the ConAn-style completion-time experiments can
//! demonstrate detection on real threads.

use std::fmt;

use jcc_runtime::{EventLog, JavaMonitor};

use crate::coverage::{mark, method_end, method_start};

/// Fault injection switches for [`ProducerConsumer`]. All `false` = the
/// correct Figure-2 component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcFaults {
    /// FF-T3: skip the guard entirely — `receive`/`send` never wait.
    pub skip_wait: bool,
    /// EF-T5 exposure: check the guard with `if` instead of `while`.
    pub if_instead_of_while: bool,
    /// FF-T5: use `notify` instead of `notifyAll`.
    pub notify_not_all: bool,
    /// FF-T5: drop the notification entirely.
    pub drop_notify: bool,
    /// EF-T3: an extra spurious `wait` at the start of `send`.
    pub spurious_wait_in_send: bool,
}

/// Error surfaced when a fault-injected run corrupts the monitor state
/// (mirrors the runtime exception a Java component would throw).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardViolation {
    /// Description of the corrupted state.
    pub message: String,
}

impl fmt::Display for GuardViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for GuardViolation {}

#[derive(Debug, Default)]
struct State {
    contents: Vec<char>,
    total_length: usize,
    cur_pos: usize,
}

/// The asymmetric producer–consumer monitor of Figure 2.
#[derive(Debug)]
pub struct ProducerConsumer {
    monitor: JavaMonitor<State>,
    faults: PcFaults,
}

impl ProducerConsumer {
    /// A correct component reporting into `log`.
    pub fn new(log: &EventLog) -> Self {
        Self::with_faults(log, PcFaults::default())
    }

    /// A component with injected faults.
    pub fn with_faults(log: &EventLog, faults: PcFaults) -> Self {
        ProducerConsumer {
            monitor: JavaMonitor::new("ProducerConsumer", log, State::default()),
            faults,
        }
    }

    fn log(&self) -> &EventLog {
        self.monitor.log()
    }

    /// Receive a single character, blocking while the buffer is empty.
    pub fn receive(&self) -> Result<char, GuardViolation> {
        method_start(self.log(), "receive");
        let guard = self.monitor.enter();
        // while (curPos == 0) wait;
        if !self.faults.skip_wait {
            let mut first = true;
            loop {
                let empty = guard.read("curPos", |s| s.cur_pos == 0);
                if !empty {
                    break;
                }
                if self.faults.if_instead_of_while && !first {
                    break; // `if` re-checks nothing after the first wake-up
                }
                first = false;
                mark(self.log(), "receive", &[0, 0]);
                guard.wait();
            }
        }
        // y = contents.charAt(totalLength - curPos); curPos--;
        let y = guard.write("curPos", |s| {
            let idx = s.total_length - s.cur_pos.min(s.total_length);
            let ch = s.contents.get(idx).copied();
            if ch.is_some() && s.cur_pos > 0 {
                s.cur_pos -= 1;
            }
            ch
        });
        let Some(y) = y else {
            method_end(self.log(), "receive");
            return Err(GuardViolation {
                message: "receive read past the buffer (guard bypassed)".into(),
            });
        };
        // notifyAll
        if !self.faults.drop_notify {
            mark(self.log(), "receive", &[3]);
            if self.faults.notify_not_all {
                guard.notify();
            } else {
                guard.notify_all();
            }
        }
        drop(guard);
        method_end(self.log(), "receive");
        Ok(y)
    }

    /// Send a string of characters, blocking while the buffer is nonempty.
    pub fn send(&self, x: &str) -> Result<(), GuardViolation> {
        method_start(self.log(), "send");
        let guard = self.monitor.enter();
        if self.faults.spurious_wait_in_send {
            guard.wait();
        }
        // while (curPos > 0) wait;
        if !self.faults.skip_wait {
            let mut first = true;
            loop {
                let nonempty = guard.read("curPos", |s| s.cur_pos > 0);
                if !nonempty {
                    break;
                }
                if self.faults.if_instead_of_while && !first {
                    break;
                }
                first = false;
                mark(self.log(), "send", &[0, 0]);
                guard.wait();
            }
        }
        let overwrote = guard.write("contents", |s| {
            let overwrote = s.cur_pos > 0;
            s.contents = x.chars().collect();
            s.total_length = s.contents.len();
            s.cur_pos = s.total_length;
            overwrote
        });
        if !self.faults.drop_notify {
            mark(self.log(), "send", &[4]);
            if self.faults.notify_not_all {
                guard.notify();
            } else {
                guard.notify_all();
            }
        }
        drop(guard);
        method_end(self.log(), "send");
        if overwrote {
            Err(GuardViolation {
                message: "send overwrote unconsumed characters (guard bypassed)".into(),
            })
        } else {
            Ok(())
        }
    }

    /// Characters not yet received (snapshot).
    pub fn pending(&self) -> usize {
        let guard = self.monitor.enter();
        guard.with(|s| s.cur_pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_clock::{Schedule, TestDriver};
    use std::sync::Arc;

    #[test]
    fn single_threaded_roundtrip() {
        let log = EventLog::new();
        let pc = ProducerConsumer::new(&log);
        pc.send("abc").unwrap();
        assert_eq!(pc.pending(), 3);
        assert_eq!(pc.receive().unwrap(), 'a');
        assert_eq!(pc.receive().unwrap(), 'b');
        assert_eq!(pc.receive().unwrap(), 'c');
        assert_eq!(pc.pending(), 0);
    }

    #[test]
    fn consumer_blocks_until_producer_arrives() {
        let log = EventLog::new();
        let pc = Arc::new(ProducerConsumer::new(&log));
        let pc1 = Arc::clone(&pc);
        let pc2 = Arc::clone(&pc);
        let schedule = Schedule::new()
            .call("receive", 1, move |_| {
                assert_eq!(pc1.receive().unwrap(), 'x');
            })
            .call("send", 2, move |_| {
                pc2.send("x").unwrap();
            });
        let (records, _) = TestDriver::new().run(schedule);
        // The receive completes only after the send released it: >= 2.
        assert!(records[0].completed_at.unwrap() >= 2, "{records:?}");
        assert!(records[1].completed_by(3));
    }

    #[test]
    fn producer_blocks_while_buffer_nonempty() {
        let log = EventLog::new();
        let pc = Arc::new(ProducerConsumer::new(&log));
        pc.send("ab").unwrap();
        let pc1 = Arc::clone(&pc);
        let pc2 = Arc::clone(&pc);
        let pc3 = Arc::clone(&pc);
        let schedule = Schedule::new()
            .call("send2", 1, move |_| {
                pc1.send("cd").unwrap();
            })
            .call("recv1", 2, move |_| {
                assert_eq!(pc2.receive().unwrap(), 'a');
            })
            .call("recv2", 3, move |_| {
                assert_eq!(pc3.receive().unwrap(), 'b');
            });
        let (records, _) = TestDriver::new().run(schedule);
        // send2 can only complete after both receives drained the buffer.
        assert!(records[0].completed_at.unwrap() >= 3, "{records:?}");
    }

    #[test]
    fn skip_wait_fault_detected_as_guard_violation() {
        let log = EventLog::new();
        let pc = ProducerConsumer::with_faults(
            &log,
            PcFaults {
                skip_wait: true,
                ..PcFaults::default()
            },
        );
        // receive on an empty buffer barges through and errs.
        assert!(pc.receive().is_err());
        // send over a nonempty buffer overwrites and errs.
        pc.send("ab").unwrap();
        assert!(pc.send("cd").is_err());
    }

    #[test]
    fn drop_notify_fault_leaves_consumer_suspended() {
        let log = EventLog::new();
        let pc = Arc::new(ProducerConsumer::with_faults(
            &log,
            PcFaults {
                drop_notify: true,
                ..PcFaults::default()
            },
        ));
        let pc1 = Arc::clone(&pc);
        let pc2 = Arc::clone(&pc);
        let schedule = Schedule::new()
            .call("receive", 1, move |_| {
                let _ = pc1.receive();
            })
            .call("send", 2, move |_| {
                let _ = pc2.send("x");
            });
        let (records, _) = TestDriver::new().run(schedule);
        assert!(records[0].suspended(), "consumer must never be woken");
        assert!(!records[1].suspended());
    }

    #[test]
    fn notify_not_all_loses_distinct_waiters() {
        // Producer waits (buffer full) and consumer waits cannot happen at
        // once here; instead: two consumers wait, a 1-char send with
        // `notify` wakes only one — the other stays suspended even though a
        // second send follows into the now-empty... (buffer refills). Use
        // three consumers / two sends to leave one stranded.
        let log = EventLog::new();
        let pc = Arc::new(ProducerConsumer::with_faults(
            &log,
            PcFaults {
                notify_not_all: true,
                ..PcFaults::default()
            },
        ));
        let c1 = Arc::clone(&pc);
        let c2 = Arc::clone(&pc);
        let p = Arc::clone(&pc);
        let schedule = Schedule::new()
            .call("recv-a", 1, move |_| {
                let _ = c1.receive();
            })
            .call("recv-b", 1, move |_| {
                let _ = c2.receive();
            })
            .call("send", 3, move |_| {
                let _ = p.send("x");
            });
        let (records, _) = TestDriver::new().run(schedule);
        let suspended = records.iter().filter(|r| r.suspended()).count();
        // One consumer gets the character; with notify (not notifyAll) the
        // other was woken at most transiently and re-waits: exactly one of
        // the two receive calls stays suspended.
        assert_eq!(suspended, 1, "{records:?}");
    }

    #[test]
    fn pending_reports_remaining() {
        let log = EventLog::new();
        let pc = ProducerConsumer::new(&log);
        pc.send("hello").unwrap();
        pc.receive().unwrap();
        assert_eq!(pc.pending(), 4);
    }

    #[test]
    fn unicode_contents_handled() {
        let log = EventLog::new();
        let pc = ProducerConsumer::new(&log);
        pc.send("éü").unwrap();
        assert_eq!(pc.receive().unwrap(), 'é');
        assert_eq!(pc.receive().unwrap(), 'ü');
    }
}
