//! A counting semaphore as a Java monitor, the native twin of
//! [`jcc_model::examples::SEMAPHORE_SRC`].

use jcc_runtime::{EventLog, JavaMonitor};

use crate::coverage::{mark, method_end, method_start};

/// A counting semaphore: `acquire` blocks while no permits are available.
#[derive(Debug)]
pub struct Semaphore {
    monitor: JavaMonitor<i64>,
}

impl Semaphore {
    /// A semaphore with `permits` initial permits, reporting into `log`.
    pub fn new(log: &EventLog, permits: i64) -> Self {
        Semaphore {
            monitor: JavaMonitor::new("Semaphore", log, permits),
        }
    }

    fn log(&self) -> &EventLog {
        self.monitor.log()
    }

    /// Take one permit, blocking until one is available.
    pub fn acquire(&self) {
        method_start(self.log(), "acquire");
        let guard = self.monitor.enter();
        while guard.read("permits", |&p| p == 0) {
            mark(self.log(), "acquire", &[0, 0]);
            guard.wait();
        }
        guard.write("permits", |p| *p -= 1);
        drop(guard);
        method_end(self.log(), "acquire");
    }

    /// Return one permit, waking waiters.
    pub fn release(&self) {
        method_start(self.log(), "release");
        let guard = self.monitor.enter();
        guard.write("permits", |p| *p += 1);
        mark(self.log(), "release", &[1]);
        guard.notify_all();
        drop(guard);
        method_end(self.log(), "release");
    }

    /// Permits currently available.
    pub fn available(&self) -> i64 {
        self.monitor.enter().with(|p| *p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_clock::{Schedule, TestDriver};
    use std::sync::Arc;

    #[test]
    fn acquire_release_counts() {
        let log = EventLog::new();
        let s = Semaphore::new(&log, 2);
        s.acquire();
        s.acquire();
        assert_eq!(s.available(), 0);
        s.release();
        assert_eq!(s.available(), 1);
    }

    #[test]
    fn acquire_blocks_at_zero() {
        let log = EventLog::new();
        let s = Arc::new(Semaphore::new(&log, 0));
        let s1 = Arc::clone(&s);
        let s2 = Arc::clone(&s);
        let schedule = Schedule::new()
            .call("acquire", 1, move |_| s1.acquire())
            .call("release", 3, move |_| s2.release());
        let (records, _) = TestDriver::new().run(schedule);
        assert!(records[0].completed_at.unwrap() >= 3, "{records:?}");
    }

    #[test]
    fn semaphore_bounds_concurrent_holders() {
        let log = EventLog::new();
        let s = Arc::new(Semaphore::new(&log, 3));
        let inside = Arc::new(std::sync::atomic::AtomicI64::new(0));
        let peak = Arc::new(std::sync::atomic::AtomicI64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                let inside = Arc::clone(&inside);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    use std::sync::atomic::Ordering::SeqCst;
                    for _ in 0..20 {
                        s.acquire();
                        let now = inside.fetch_add(1, SeqCst) + 1;
                        peak.fetch_max(now, SeqCst);
                        inside.fetch_sub(1, SeqCst);
                        s.release();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(std::sync::atomic::Ordering::SeqCst) <= 3);
        assert_eq!(s.available(), 3);
    }
}
