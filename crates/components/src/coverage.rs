//! Folding a native runtime event log into CoFG coverage — the runtime
//! counterpart of `jcc_vm::trace::apply_trace`.

use jcc_cofg::coverage::{CoverageTracker, Marker, SiteId};
use jcc_model::ast::StmtPath;
use jcc_runtime::{Event, EventKind, EventLog, MonitorId};

/// Fold marker events of a runtime log snapshot into the tracker.
pub fn apply_log(events: &[Event], tracker: &mut CoverageTracker) {
    for event in events {
        match &event.kind {
            EventKind::MethodStart { method } => {
                tracker.record(event.thread, &SiteId::start(method.clone()));
            }
            EventKind::MethodEnd { method } => {
                tracker.record(event.thread, &SiteId::end(method.clone()));
            }
            EventKind::Marker { method, path } => {
                tracker.record(
                    event.thread,
                    &SiteId {
                        method: method.clone(),
                        marker: Marker::Stmt(StmtPath(path.clone())),
                    },
                );
            }
            _ => {}
        }
    }
}

/// Helper used by the native components: log a statement marker.
pub(crate) fn mark(log: &EventLog, method: &str, path: &[usize]) {
    log.log(
        MonitorId(0),
        EventKind::Marker {
            method: method.to_string(),
            path: path.to_vec(),
        },
    );
}

/// Helper: log a method start.
pub(crate) fn method_start(log: &EventLog, method: &str) {
    log.log(
        MonitorId(0),
        EventKind::MethodStart {
            method: method.to_string(),
        },
    );
}

/// Helper: log a method end.
pub(crate) fn method_end(log: &EventLog, method: &str) {
    log.log(
        MonitorId(0),
        EventKind::MethodEnd {
            method: method.to_string(),
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_cofg::build_component_cofgs;

    #[test]
    fn markers_flow_into_tracker() {
        let c = jcc_model::examples::producer_consumer();
        let mut tracker = CoverageTracker::new(build_component_cofgs(&c));
        let log = EventLog::new();
        method_start(&log, "send");
        mark(&log, "send", &[4]); // notifyAll
        method_end(&log, "send");
        apply_log(&log.snapshot(), &mut tracker);
        assert_eq!(tracker.covered_arcs(), 2);
        assert_eq!(tracker.strays, 0);
    }
}
