//! A generic capacity-bounded FIFO on the Java monitor — a library
//! extension beyond the paper's corpus (no Monitor-IR twin). It shows the
//! `JavaMonitor` API carrying a realistic component: generic payloads,
//! capacity > 1, timed take.

use std::collections::VecDeque;
use std::time::Duration;

use jcc_runtime::{EventLog, JavaMonitor};

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    capacity: usize,
}

/// A blocking FIFO with fixed capacity.
#[derive(Debug)]
pub struct RingBuffer<T> {
    monitor: JavaMonitor<State<T>>,
}

impl<T> RingBuffer<T> {
    /// A buffer holding at most `capacity` items, reporting into `log`.
    /// Panics when `capacity` is zero.
    pub fn new(log: &EventLog, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        RingBuffer {
            monitor: JavaMonitor::new(
                "RingBuffer",
                log,
                State {
                    items: VecDeque::with_capacity(capacity),
                    capacity,
                },
            ),
        }
    }

    /// Append `item`, blocking while the buffer is full.
    pub fn push(&self, item: T) {
        let guard = self.monitor.enter();
        guard.wait_while(|s| s.items.len() >= s.capacity);
        guard.with(|s| s.items.push_back(item));
        guard.notify_all();
    }

    /// Remove the oldest item, blocking while the buffer is empty.
    pub fn pop(&self) -> T {
        let guard = self.monitor.enter();
        guard.wait_while(|s| s.items.is_empty());
        let item = guard.with(|s| s.items.pop_front().expect("nonempty after wait"));
        guard.notify_all();
        item
    }

    /// Like [`pop`](Self::pop) but gives up after `timeout`; `None` when
    /// the buffer stayed empty.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let guard = self.monitor.enter();
        loop {
            if let Some(item) = guard.with(|s| s.items.pop_front()) {
                guard.notify_all();
                return Some(item);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            guard.wait_for(deadline - now);
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.monitor.enter().with(|s| s.items.len())
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let log = EventLog::new();
        let rb = RingBuffer::new(&log, 4);
        rb.push(1);
        rb.push(2);
        rb.push(3);
        assert_eq!(rb.len(), 3);
        assert_eq!((rb.pop(), rb.pop(), rb.pop()), (1, 2, 3));
        assert!(rb.is_empty());
    }

    #[test]
    fn pop_timeout_on_empty() {
        let log = EventLog::new();
        let rb: RingBuffer<u8> = RingBuffer::new(&log, 2);
        assert_eq!(rb.pop_timeout(Duration::from_millis(15)), None);
    }

    #[test]
    fn pop_timeout_gets_item() {
        let log = EventLog::new();
        let rb = Arc::new(RingBuffer::new(&log, 2));
        let rb2 = Arc::clone(&rb);
        let h = std::thread::spawn(move || rb2.pop_timeout(Duration::from_millis(500)));
        std::thread::sleep(Duration::from_millis(20));
        rb.push(9);
        assert_eq!(h.join().unwrap(), Some(9));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let log = EventLog::new();
        let _: RingBuffer<u8> = RingBuffer::new(&log, 0);
    }

    #[test]
    fn producers_and_consumers_stress() {
        let log = EventLog::new();
        let rb = Arc::new(RingBuffer::new(&log, 3));
        let mut producers = Vec::new();
        for p in 0..4 {
            let rb = Arc::clone(&rb);
            producers.push(std::thread::spawn(move || {
                for i in 0..25 {
                    rb.push(p * 100 + i);
                }
            }));
        }
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rb = Arc::clone(&rb);
                std::thread::spawn(move || (0..25).map(|_| rb.pop()).collect::<Vec<i32>>())
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<i32> = (0..4).flat_map(|p| (0..25).map(move |i| p * 100 + i)).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
        assert!(rb.is_empty());
    }
}
