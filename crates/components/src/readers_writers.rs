//! Readers–writers with writer preference, the native twin of
//! [`jcc_model::examples::READERS_WRITERS_SRC`].

use jcc_runtime::{EventLog, JavaMonitor};

use crate::coverage::{mark, method_end, method_start};

#[derive(Debug, Default)]
struct State {
    readers: i64,
    writing: bool,
    writers_waiting: i64,
}

/// A readers–writers monitor giving waiting writers preference over new
/// readers.
#[derive(Debug)]
pub struct ReadersWriters {
    monitor: JavaMonitor<State>,
}

impl ReadersWriters {
    /// A new monitor reporting into `log`.
    pub fn new(log: &EventLog) -> Self {
        ReadersWriters {
            monitor: JavaMonitor::new("ReadersWriters", log, State::default()),
        }
    }

    fn log(&self) -> &EventLog {
        self.monitor.log()
    }

    /// Begin a read section; blocks while a writer writes or waits.
    pub fn start_read(&self) {
        method_start(self.log(), "startRead");
        let guard = self.monitor.enter();
        while guard.read("writing", |s| s.writing || s.writers_waiting > 0) {
            mark(self.log(), "startRead", &[0, 0]);
            guard.wait();
        }
        guard.write("readers", |s| s.readers += 1);
        drop(guard);
        method_end(self.log(), "startRead");
    }

    /// End a read section.
    pub fn end_read(&self) {
        method_start(self.log(), "endRead");
        let guard = self.monitor.enter();
        let last = guard.write("readers", |s| {
            s.readers -= 1;
            s.readers == 0
        });
        if last {
            mark(self.log(), "endRead", &[1, 0]);
            guard.notify_all();
        }
        drop(guard);
        method_end(self.log(), "endRead");
    }

    /// Begin a write section; blocks while anyone reads or writes.
    pub fn start_write(&self) {
        method_start(self.log(), "startWrite");
        let guard = self.monitor.enter();
        guard.write("writersWaiting", |s| s.writers_waiting += 1);
        while guard.read("writing", |s| s.writing || s.readers > 0) {
            mark(self.log(), "startWrite", &[1, 0]);
            guard.wait();
        }
        guard.write("writing", |s| {
            s.writers_waiting -= 1;
            s.writing = true;
        });
        drop(guard);
        method_end(self.log(), "startWrite");
    }

    /// End a write section, waking all waiters.
    pub fn end_write(&self) {
        method_start(self.log(), "endWrite");
        let guard = self.monitor.enter();
        guard.write("writing", |s| s.writing = false);
        mark(self.log(), "endWrite", &[1]);
        guard.notify_all();
        drop(guard);
        method_end(self.log(), "endWrite");
    }

    /// Snapshot: (active readers, writing?, writers waiting).
    pub fn snapshot(&self) -> (i64, bool, i64) {
        self.monitor
            .enter()
            .with(|s| (s.readers, s.writing, s.writers_waiting))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_clock::{Schedule, TestDriver};
    use std::sync::atomic::{AtomicI64, Ordering::SeqCst};
    use std::sync::Arc;

    #[test]
    fn readers_share_writers_exclude() {
        let log = EventLog::new();
        let rw = Arc::new(ReadersWriters::new(&log));
        rw.start_read();
        rw.start_read();
        assert_eq!(rw.snapshot(), (2, false, 0));
        rw.end_read();
        rw.end_read();
        rw.start_write();
        assert_eq!(rw.snapshot(), (0, true, 0));
        rw.end_write();
    }

    #[test]
    fn writer_waits_for_readers() {
        let log = EventLog::new();
        let rw = Arc::new(ReadersWriters::new(&log));
        rw.start_read();
        let w = Arc::clone(&rw);
        let r = Arc::clone(&rw);
        let schedule = Schedule::new()
            .call("write", 1, move |_| {
                w.start_write();
                w.end_write();
            })
            .call("end-read", 3, move |_| r.end_read());
        let (records, _) = TestDriver::new().run(schedule);
        assert!(records[0].completed_at.unwrap() >= 3, "{records:?}");
    }

    #[test]
    fn waiting_writer_blocks_new_readers() {
        let log = EventLog::new();
        let rw = Arc::new(ReadersWriters::new(&log));
        rw.start_read();
        let w = Arc::clone(&rw);
        let r2 = Arc::clone(&rw);
        let r1 = Arc::clone(&rw);
        let schedule = Schedule::new()
            .call("write", 1, move |_| {
                w.start_write();
                w.end_write();
            })
            .call("read2", 2, move |_| {
                r2.start_read();
                r2.end_read();
            })
            .call("end-read1", 4, move |_| r1.end_read());
        let (records, _) = TestDriver::new().run(schedule);
        // The second reader must not slip in before the waiting writer:
        // writer completes at >= 4, and read2 only after the writer.
        let write_done = records[0].completed_at.unwrap();
        let read2_done = records[1].completed_at.unwrap();
        assert!(write_done >= 4, "{records:?}");
        assert!(read2_done >= write_done, "{records:?}");
    }

    #[test]
    fn no_reader_writer_overlap_under_stress() {
        let log = EventLog::new();
        let rw = Arc::new(ReadersWriters::new(&log));
        let active_readers = Arc::new(AtomicI64::new(0));
        let active_writers = Arc::new(AtomicI64::new(0));
        let violations = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for i in 0..6 {
            let rw = Arc::clone(&rw);
            let ar = Arc::clone(&active_readers);
            let aw = Arc::clone(&active_writers);
            let viol = Arc::clone(&violations);
            handles.push(std::thread::spawn(move || {
                for _ in 0..30 {
                    if i % 2 == 0 {
                        rw.start_read();
                        ar.fetch_add(1, SeqCst);
                        if aw.load(SeqCst) > 0 {
                            viol.fetch_add(1, SeqCst);
                        }
                        ar.fetch_sub(1, SeqCst);
                        rw.end_read();
                    } else {
                        rw.start_write();
                        aw.fetch_add(1, SeqCst);
                        if ar.load(SeqCst) > 0 || aw.load(SeqCst) > 1 {
                            viol.fetch_add(1, SeqCst);
                        }
                        aw.fetch_sub(1, SeqCst);
                        rw.end_write();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(violations.load(SeqCst), 0);
        assert_eq!(rw.snapshot(), (0, false, 0));
    }
}
