//! # jcc-components — the concurrent component corpus
//!
//! The paper's future work calls for applying the method to "a range of
//! concurrent components". This crate provides that range, each component
//! in two forms:
//!
//! * a **native** implementation on [`jcc_runtime::JavaMonitor`] with real
//!   threads — instrumented with the same coverage markers as its model, so
//!   the CoFGs built from the model measure the native runs too, and
//! * a **model** (Monitor IR) form re-exported from
//!   [`jcc_model::examples`], used by the VM, the CoFG builder and the
//!   mutation study.
//!
//! Components: the paper's Figure-2 producer–consumer ([`producer_consumer`]),
//! a one-slot bounded buffer ([`bounded_buffer`]), a counting semaphore
//! ([`semaphore`]), a readers–writers monitor ([`readers_writers`]), a
//! cyclic barrier ([`barrier`]), and — as a library extension with no model
//! twin — a generic ring buffer ([`ring_buffer`]).
//!
//! Beyond the native/model pairs, two corpus extensions double the
//! evaluation surface:
//!
//! * [`zoo`] — seven `java.util.concurrent`-shaped monitor families
//!   (thread pool, future cell, cyclic barrier with generations, fair and
//!   barging semaphores, read–write lock with upgrade/downgrade,
//!   exchanger, bounded stack), each model-only, validated, analyzer-clean
//!   and mutation-ready; [`zoo::full_corpus`] is the seed corpus plus the
//!   zoo.
//! * [`gen`] — a seeded, fully deterministic component generator whose
//!   output is valid by construction, parameterised over guard / wait-site
//!   / lock / padding counts; the E11 scaling sweep is built on it.
//!
//! Native components take fault-injection configs mirroring the model-level
//! mutation operators, so the completion-time experiments (E6) can seed the
//! same Table-1 failure classes in real threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrier;
pub mod bounded_buffer;
pub mod coverage;
pub mod gen;
pub mod producer_consumer;
pub mod readers_writers;
pub mod ring_buffer;
pub mod semaphore;
pub mod zoo;

/// The Monitor IR twins of the native components.
pub mod model {
    pub use jcc_model::examples::{
        barrier, bounded_buffer, corpus, lock_order_deadlock, producer_consumer, racy_counter,
        readers_writers, semaphore,
    };
}

pub use coverage::apply_log;
pub use producer_consumer::{PcFaults, ProducerConsumer};
