//! A seeded, fully deterministic component generator.
//!
//! `generate` emits Monitor IR components that are **valid by
//! construction** — they parse, pass `validate`, and earn zero High
//! diagnostics from the static analyzer — while scaling along the axes the
//! sweep bench (E11) cares about:
//!
//! * `guards` counting guard cells `g0..` on the implicit monitor, each
//!   with a non-blocking `put<i>` (increment + broadcast);
//! * `wait_sites` blocking `take<i>_<j>` methods distributed round-robin
//!   over the guards, each a disciplined `while (g<i> == 0) wait;` loop
//!   (so wait-site count is tunable independently of guard count);
//! * `locks` named locks `l0..` swept by non-synchronized methods whose
//!   nested `synchronized` blocks always acquire in ascending index order
//!   (acyclic by construction — the lock-order check stays quiet);
//! * `padding` plain accumulator statements appended to the blocking
//!   methods, growing body size (and the interleaving surface) without
//!   changing the blocking structure.
//!
//! Everything random — padding constants, lock subsets, wait-site spread —
//! comes from the vendored `StdRng` seeded with `GenConfig::seed`, so a
//! config is a complete, reproducible description of its component:
//! `generate_source` is byte-identical across runs, machines and thread
//! counts.
//!
//! [`call_plan`] pairs each component with a deadlock-free scenario: every
//! thread performs all of its (non-blocking) puts before its takes and the
//! put/take multiset is balanced per guard, so every schedule terminates —
//! which keeps the E11 exploration census a pure throughput measurement.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use jcc_model::ast::Component;

/// The generator's size and randomness knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Counting guard cells on the implicit monitor (each gets a `put<i>`).
    pub guards: usize,
    /// Blocking `take` methods, spread round-robin over the guards.
    /// Clamped up to `guards` (every guard needs at least one taker for
    /// the balanced call plan).
    pub wait_sites: usize,
    /// Named locks swept in ascending order by non-synchronized methods.
    pub locks: usize,
    /// Extra accumulator statements distributed over the take methods.
    pub padding: usize,
    /// Threads in the generated scenario (see [`call_plan`]).
    pub threads: usize,
    /// Seed for everything random.
    pub seed: u64,
}

impl GenConfig {
    /// The scaling ladder used by the E11 sweep: size `n` means `n`
    /// guards, `2n` wait sites, `n` named locks, `2n` padding statements,
    /// three scenario threads.
    pub fn sized(n: usize, seed: u64) -> Self {
        assert!(n > 0, "size must be positive");
        GenConfig {
            guards: n,
            wait_sites: 2 * n,
            locks: n,
            padding: 2 * n,
            threads: 3,
            seed,
        }
    }

    fn wait_sites_clamped(&self) -> usize {
        self.wait_sites.max(self.guards)
    }

    /// The generated component's class name, derived from the size axes
    /// (not the seed — two seeds at one size are siblings, not twins).
    pub fn class_name(&self) -> String {
        format!(
            "GenG{}W{}L{}P{}",
            self.guards,
            self.wait_sites_clamped(),
            self.locks,
            self.padding
        )
    }
}

/// Emit the component's Monitor IR source. Deterministic in `cfg`.
pub fn generate_source(cfg: &GenConfig) -> String {
    assert!(cfg.guards > 0, "need at least one guard cell");
    assert!(cfg.threads > 0, "need at least one scenario thread");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let wait_sites = cfg.wait_sites_clamped();
    let mut src = String::new();
    src.push_str(&format!("class {} {{\n", cfg.class_name()));
    for l in 0..cfg.locks {
        src.push_str(&format!("  lock l{l};\n"));
    }
    for g in 0..cfg.guards {
        src.push_str(&format!("  var g{g}: int = 0;\n"));
    }
    src.push_str("  var acc: int = 0;\n");
    for l in 0..cfg.locks {
        src.push_str(&format!("  var u{l}: int = 0;\n"));
    }

    // Non-blocking producers: one per guard, always broadcasting.
    for g in 0..cfg.guards {
        src.push_str(&format!(
            "\n  synchronized fn put{g}() {{\n    g{g} = g{g} + 1;\n    notifyAll;\n  }}\n"
        ));
    }

    // Blocking consumers: wait_sites disciplined guard loops, round-robin
    // over the guards, with the padding spread across their tails.
    let mut pad_left = cfg.padding;
    for site in 0..wait_sites {
        let g = site % cfg.guards;
        let j = site / cfg.guards;
        src.push_str(&format!(
            "\n  synchronized fn take{g}_{j}() {{\n    while (g{g} == 0) {{\n      wait;\n    }}\n    g{g} = g{g} - 1;\n"
        ));
        let pad_here = pad_left.div_ceil(wait_sites - site);
        for _ in 0..pad_here {
            let k: i64 = rng.gen_range(1..100);
            src.push_str(&format!("    acc = acc + {k};\n"));
        }
        pad_left -= pad_here;
        src.push_str("  }\n");
    }

    // Lock sweeps: ascending nested acquisition over a seeded subset, so
    // the global lock order is acyclic by construction.
    for sweep in 0..cfg.locks {
        let mut subset: Vec<usize> = (0..cfg.locks)
            .filter(|_| rng.gen_bool(0.7))
            .collect();
        if subset.is_empty() {
            subset.push(sweep % cfg.locks);
        }
        src.push_str(&format!("\n  fn sweep{sweep}() {{\n"));
        for (depth, l) in subset.iter().enumerate() {
            let indent = "  ".repeat(depth + 2);
            src.push_str(&format!("{indent}synchronized (l{l}) {{\n"));
        }
        let body_indent = "  ".repeat(subset.len() + 2);
        let innermost = *subset.last().unwrap();
        src.push_str(&format!(
            "{body_indent}u{innermost} = u{innermost} + 1;\n"
        ));
        for depth in (0..subset.len()).rev() {
            let indent = "  ".repeat(depth + 2);
            src.push_str(&format!("{indent}}}\n"));
        }
        src.push_str("  }\n");
    }

    src.push_str("}\n");
    src
}

/// Generate and check the component: parses, validates, and is returned
/// ready for the VM / analyzer / mutation harnesses.
pub fn generate(cfg: &GenConfig) -> Component {
    let src = generate_source(cfg);
    let c = jcc_model::parse_component(&src)
        .unwrap_or_else(|e| panic!("generated source must parse: {e}\n{src}"));
    let errors = jcc_model::validate::validate(&c);
    assert!(errors.is_empty(), "generated source invalid: {errors:?}\n{src}");
    c
}

/// The deterministic, deadlock-free scenario for a generated component:
/// per-thread call sequences (every generated method is nullary). Each
/// wait site is assigned round-robin to a thread together with one
/// matching `put`, puts are ordered before takes within every thread, and
/// each thread with room gets one lock sweep — so the put/take multiset is
/// balanced per guard and no schedule can hang.
pub fn call_plan(cfg: &GenConfig) -> Vec<Vec<String>> {
    let wait_sites = cfg.wait_sites_clamped();
    let mut puts: Vec<Vec<String>> = vec![Vec::new(); cfg.threads];
    let mut takes: Vec<Vec<String>> = vec![Vec::new(); cfg.threads];
    for site in 0..wait_sites {
        let g = site % cfg.guards;
        let j = site / cfg.guards;
        let t = site % cfg.threads;
        puts[t].push(format!("put{g}"));
        takes[t].push(format!("take{g}_{j}"));
    }
    (0..cfg.threads)
        .map(|t| {
            let mut calls = puts[t].clone();
            if cfg.locks > 0 && t < cfg.locks {
                calls.push(format!("sweep{t}"));
            }
            calls.extend(takes[t].iter().cloned());
            calls
        })
        // A thread with no calls never reaches its terminal state in the
        // VM and would turn every schedule into a deadlock.
        .filter(|calls| !calls.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_analyze::{analyze, Severity};
    use jcc_model::pretty::print_component;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig::sized(3, 42);
        assert_eq!(generate_source(&cfg), generate_source(&cfg));
        let other = GenConfig::sized(3, 43);
        assert_ne!(generate_source(&cfg), generate_source(&other));
    }

    #[test]
    fn generated_components_validate_compile_and_stay_clean() {
        for n in 1..=4 {
            for seed in [7u64, 99] {
                let cfg = GenConfig::sized(n, seed);
                let c = generate(&cfg);
                assert_eq!(c.name, cfg.class_name());
                jcc_vm::compile(&c).unwrap_or_else(|e| panic!("size {n}: {e:?}"));
                let report = analyze(&c);
                assert_eq!(
                    report.count(Severity::High),
                    0,
                    "size {n} seed {seed} got High diagnostics:\n{}",
                    report.render()
                );
            }
        }
    }

    #[test]
    fn generated_components_roundtrip_through_the_printer() {
        let c = generate(&GenConfig::sized(2, 5));
        let printed = print_component(&c);
        let reparsed = jcc_model::parse_component(&printed).unwrap();
        assert_eq!(c, reparsed);
    }

    #[test]
    fn call_plan_is_balanced_and_puts_come_first() {
        let cfg = GenConfig::sized(3, 11);
        let plan = call_plan(&cfg);
        assert!(!plan.is_empty() && plan.len() <= cfg.threads);
        assert!(plan.iter().all(|t| !t.is_empty()));
        let mut puts = std::collections::BTreeMap::new();
        let mut takes = std::collections::BTreeMap::new();
        for thread in &plan {
            let first_take = thread
                .iter()
                .position(|c| c.starts_with("take"))
                .unwrap_or(thread.len());
            for (i, call) in thread.iter().enumerate() {
                if let Some(g) = call.strip_prefix("put") {
                    *puts.entry(g.to_string()).or_insert(0usize) += 1;
                    assert!(i < first_take, "puts must precede takes");
                } else if call.starts_with("take") {
                    let g = call
                        .trim_start_matches("take")
                        .split('_')
                        .next()
                        .unwrap()
                        .to_string();
                    *takes.entry(g).or_insert(0usize) += 1;
                }
            }
        }
        assert_eq!(puts, takes, "per-guard put/take multisets must balance");
    }

    #[test]
    fn every_planned_call_exists_on_the_component() {
        let cfg = GenConfig::sized(4, 3);
        let c = generate(&cfg);
        for thread in call_plan(&cfg) {
            for call in thread {
                assert!(c.method(&call).is_some(), "missing method {call}");
            }
        }
    }

    #[test]
    fn wait_sites_clamp_up_to_guards() {
        let cfg = GenConfig {
            guards: 4,
            wait_sites: 1,
            locks: 0,
            padding: 0,
            threads: 2,
            seed: 0,
        };
        let c = generate(&cfg);
        let takes = c
            .methods
            .iter()
            .filter(|m| m.name.starts_with("take"))
            .count();
        assert_eq!(takes, 4, "every guard needs a taker");
    }
}
