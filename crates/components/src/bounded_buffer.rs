//! A one-slot bounded buffer of integers (symmetric producer–consumer),
//! the native twin of [`jcc_model::examples::BOUNDED_BUFFER_SRC`].

use jcc_runtime::{EventLog, JavaMonitor};

use crate::coverage::{mark, method_end, method_start};

#[derive(Debug, Default)]
struct State {
    value: i64,
    full: bool,
}

/// A one-slot buffer: `put` blocks while full, `take` blocks while empty.
#[derive(Debug)]
pub struct BoundedBuffer {
    monitor: JavaMonitor<State>,
}

impl BoundedBuffer {
    /// A new empty buffer reporting into `log`.
    pub fn new(log: &EventLog) -> Self {
        BoundedBuffer {
            monitor: JavaMonitor::new("BoundedBuffer", log, State::default()),
        }
    }

    fn log(&self) -> &EventLog {
        self.monitor.log()
    }

    /// Store `v`, blocking while the slot is occupied.
    pub fn put(&self, v: i64) {
        method_start(self.log(), "put");
        let guard = self.monitor.enter();
        while guard.read("full", |s| s.full) {
            mark(self.log(), "put", &[0, 0]);
            guard.wait();
        }
        guard.write("value", |s| {
            s.value = v;
            s.full = true;
        });
        mark(self.log(), "put", &[3]);
        guard.notify_all();
        drop(guard);
        method_end(self.log(), "put");
    }

    /// Remove and return the value, blocking while the slot is empty.
    pub fn take(&self) -> i64 {
        method_start(self.log(), "take");
        let guard = self.monitor.enter();
        while guard.read("full", |s| !s.full) {
            mark(self.log(), "take", &[0, 0]);
            guard.wait();
        }
        let v = guard.write("full", |s| {
            s.full = false;
            s.value
        });
        mark(self.log(), "take", &[1]);
        guard.notify_all();
        drop(guard);
        method_end(self.log(), "take");
        v
    }

    /// Whether the slot currently holds a value.
    pub fn is_full(&self) -> bool {
        self.monitor.enter().with(|s| s.full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcc_clock::{Schedule, TestDriver};
    use std::sync::Arc;

    #[test]
    fn put_take_roundtrip() {
        let log = EventLog::new();
        let b = BoundedBuffer::new(&log);
        b.put(42);
        assert!(b.is_full());
        assert_eq!(b.take(), 42);
        assert!(!b.is_full());
    }

    #[test]
    fn take_blocks_until_put() {
        let log = EventLog::new();
        let b = Arc::new(BoundedBuffer::new(&log));
        let b1 = Arc::clone(&b);
        let b2 = Arc::clone(&b);
        let schedule = Schedule::new()
            .call("take", 1, move |_| {
                assert_eq!(b1.take(), 7);
            })
            .call("put", 2, move |_| b2.put(7));
        let (records, _) = TestDriver::new().run(schedule);
        assert!(records[0].completed_at.unwrap() >= 2);
    }

    #[test]
    fn second_put_blocks_until_take() {
        let log = EventLog::new();
        let b = Arc::new(BoundedBuffer::new(&log));
        b.put(1);
        let b1 = Arc::clone(&b);
        let b2 = Arc::clone(&b);
        let schedule = Schedule::new()
            .call("put2", 1, move |_| b1.put(2))
            .call("take", 2, move |_| {
                assert_eq!(b2.take(), 1);
            });
        let (records, _) = TestDriver::new().run(schedule);
        assert!(records[0].completed_at.unwrap() >= 2, "{records:?}");
    }

    #[test]
    fn many_items_flow_through_in_order() {
        let log = EventLog::new();
        let b = Arc::new(BoundedBuffer::new(&log));
        let producer = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                for i in 0..50 {
                    b.put(i);
                }
            })
        };
        let consumer = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || (0..50).map(|_| b.take()).collect::<Vec<_>>())
        };
        producer.join().unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }
}
