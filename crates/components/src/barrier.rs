//! A cyclic barrier as a Java monitor, the native twin of
//! [`jcc_model::examples::BARRIER_SRC`].

use jcc_runtime::{EventLog, JavaMonitor};

use crate::coverage::{mark, method_end, method_start};

#[derive(Debug)]
struct State {
    parties: usize,
    arrived: usize,
    generation: u64,
}

/// A reusable barrier: the `parties`-th arrival releases everyone and
/// starts a new generation.
#[derive(Debug)]
pub struct Barrier {
    monitor: JavaMonitor<State>,
}

impl Barrier {
    /// A barrier for `parties` threads, reporting into `log`.
    /// Panics when `parties` is zero.
    pub fn new(log: &EventLog, parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        Barrier {
            monitor: JavaMonitor::new(
                "Barrier",
                log,
                State {
                    parties,
                    arrived: 0,
                    generation: 0,
                },
            ),
        }
    }

    fn log(&self) -> &EventLog {
        self.monitor.log()
    }

    /// Arrive and wait for the rest of the generation. Returns the
    /// generation number that was completed.
    pub fn arrive_and_wait(&self) -> u64 {
        method_start(self.log(), "await");
        let guard = self.monitor.enter();
        let gen = guard.read("generation", |s| s.generation);
        let arrived = guard.write("arrived", |s| {
            s.arrived += 1;
            s.arrived
        });
        let parties = guard.with(|s| s.parties);
        if arrived == parties {
            guard.write("generation", |s| {
                s.arrived = 0;
                s.generation += 1;
            });
            mark(self.log(), "await", &[2, 2]);
            guard.notify_all();
            drop(guard);
            method_end(self.log(), "await");
            return gen;
        }
        while guard.read("generation", |s| s.generation == gen) {
            mark(self.log(), "await", &[3, 0]);
            guard.wait();
        }
        drop(guard);
        method_end(self.log(), "await");
        gen
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.monitor.enter().with(|s| s.generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn all_parties_released_together() {
        let log = EventLog::new();
        let b = Arc::new(Barrier::new(&log, 4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.arrive_and_wait())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 0);
        }
        assert_eq!(b.generation(), 1);
    }

    #[test]
    fn barrier_is_cyclic() {
        let log = EventLog::new();
        let b = Arc::new(Barrier::new(&log, 2));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || (b.arrive_and_wait(), b.arrive_and_wait()))
            })
            .collect();
        for h in handles {
            let (g1, g2) = h.join().unwrap();
            assert_eq!((g1, g2), (0, 1));
        }
        assert_eq!(b.generation(), 2);
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let log = EventLog::new();
        let b = Barrier::new(&log, 1);
        assert_eq!(b.arrive_and_wait(), 0);
        assert_eq!(b.arrive_and_wait(), 1);
        assert_eq!(b.generation(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_panics() {
        let log = EventLog::new();
        let _ = Barrier::new(&log, 0);
    }

    #[test]
    fn stress_many_generations() {
        let log = EventLog::new();
        let b = Arc::new(Barrier::new(&log, 3));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut gens = Vec::new();
                    for _ in 0..25 {
                        gens.push(b.arrive_and_wait());
                    }
                    gens
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), (0..25).collect::<Vec<u64>>());
        }
    }
}
