//! Integration: every mutation operator provokes the failure class Table 1
//! assigns to it, detectable by the technique the paper's testing notes
//! name.

use jcc_core::detect::classify::{classify_explore, classify_outcome};
use jcc_core::model::examples;
use jcc_core::model::mutate::{apply_mutation, enumerate_mutations, Mutation, MutationKind};
use jcc_core::vm::{compile, explore, CallSpec, ExploreConfig, ThreadSpec, Value, Vm};

fn pc_scenario() -> Vec<ThreadSpec> {
    vec![
        ThreadSpec {
            name: "c".into(),
            calls: vec![CallSpec::new("receive", vec![])],
        },
        ThreadSpec {
            name: "p".into(),
            calls: vec![CallSpec::new("send", vec![Value::Str("a".into())])],
        },
    ]
}

fn find(kind: MutationKind, method: &str) -> (Mutation, jcc_core::model::Component) {
    let c = examples::producer_consumer();
    let m = enumerate_mutations(&c)
        .into_iter()
        .find(|m| m.kind == kind && m.method == method)
        .unwrap_or_else(|| panic!("no {kind} mutation on {method}"));
    let mutant = apply_mutation(&c, &m).unwrap();
    (m, mutant)
}

#[test]
fn skip_wait_provokes_inescapable_spin() {
    let (_, mutant) = find(MutationKind::SkipWait, "receive");
    let r = explore(
        Vm::new(compile(&mutant).unwrap(), pc_scenario()),
        &ExploreConfig::default(),
        None,
    );
    assert!(r.inescapable_cycles > 0);
    let findings = classify_explore(&r);
    assert!(findings.iter().any(|f| f.class.code() == "FF-T4"), "{findings:?}");
}

#[test]
fn drop_notify_provokes_ff_t5() {
    let (_, mutant) = find(MutationKind::DropNotify, "send");
    let r = explore(
        Vm::new(compile(&mutant).unwrap(), pc_scenario()),
        &ExploreConfig::default(),
        None,
    );
    assert!(r.deadlock_paths > 0);
    let findings = classify_explore(&r);
    assert!(findings.iter().any(|f| f.class.code() == "FF-T5"), "{findings:?}");
}

#[test]
fn hold_lock_forever_blocks_every_other_thread() {
    let (_, mutant) = find(MutationKind::HoldLockForever, "receive");
    let r = explore(
        Vm::new(compile(&mutant).unwrap(), pc_scenario()),
        &ExploreConfig::default(),
        None,
    );
    assert!(r.cycle_paths > 0);
    assert!(r.inescapable_cycles > 0, "nobody can break the spin: {r:?}");
}

#[test]
fn drop_synchronized_raises_illegal_monitor_state() {
    let (_, mutant) = find(MutationKind::DropSynchronized, "send");
    let mut vm = Vm::new(compile(&mutant).unwrap(), pc_scenario());
    let out = vm.run(&jcc_core::vm::RunConfig::default());
    let findings = classify_outcome(&out);
    assert!(
        findings.iter().any(|f| f.class.code() == "FF-T1"),
        "{findings:?}"
    );
}

#[test]
fn spurious_wait_suspends_whole_system() {
    let (_, mutant) = find(MutationKind::SpuriousWait, "send");
    // Producer alone: its spurious wait has no notifier.
    let mut vm = Vm::new(
        compile(&mutant).unwrap(),
        vec![ThreadSpec {
            name: "p".into(),
            calls: vec![CallSpec::new("send", vec![Value::Str("a".into())])],
        }],
    );
    let out = vm.run(&jcc_core::vm::RunConfig::default());
    assert!(matches!(
        out.verdict,
        jcc_core::vm::Verdict::Deadlock { ref waiting, .. } if waiting == &vec![0]
    ));
}

#[test]
fn negate_wait_condition_inverts_blocking() {
    let (_, mutant) = find(MutationKind::NegateWaitCondition, "receive");
    // With the guard negated, a receive on an EMPTY buffer no longer waits
    // — it barges ahead and faults on charAt (FF-T3's "erroneously execute
    // in a critical section").
    let mut vm = Vm::new(
        compile(&mutant).unwrap(),
        vec![ThreadSpec {
            name: "c".into(),
            calls: vec![CallSpec::new("receive", vec![])],
        }],
    );
    let out = vm.run(&jcc_core::vm::RunConfig::default());
    assert!(matches!(out.verdict, jcc_core::vm::Verdict::Faulted { .. }));
}

#[test]
fn early_return_skips_notification() {
    let (_, mutant) = find(MutationKind::EarlyReturn, "send");
    // Consumer waits; mutated send releases early without notifying.
    let r = explore(
        Vm::new(compile(&mutant).unwrap(), pc_scenario()),
        &ExploreConfig::default(),
        None,
    );
    assert!(r.deadlock_paths > 0, "{r:?}");
}

#[test]
fn redundant_sync_is_behaviourally_neutral() {
    // EF-T1: "not necessarily a serious problem … simply introduces
    // inefficiency". Reentrancy makes the mutant's behaviour identical.
    use jcc_core::testgen::signature::{enumerate_signatures, EnumLimits};
    let (_, mutant) = find(MutationKind::AddRedundantSync, "receive");
    let c = examples::producer_consumer();
    let (a, _) = enumerate_signatures(
        Vm::new(compile(&c).unwrap(), pc_scenario()),
        EnumLimits::default(),
    );
    let (b, _) = enumerate_signatures(
        Vm::new(compile(&mutant).unwrap(), pc_scenario()),
        EnumLimits::default(),
    );
    assert_eq!(a, b);
}

#[test]
fn all_mutants_of_corpus_execute_without_panicking_the_vm() {
    for (name, component) in examples::corpus() {
        for (mutation, mutant) in jcc_core::model::mutate::all_mutants(&component) {
            let compiled = compile(&mutant)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", mutation.label()));
            // A tiny smoke scenario: one thread calls each method once with
            // default-ish args — the VM must terminate with SOME verdict.
            let calls: Vec<CallSpec> = mutant
                .methods
                .iter()
                .map(|m| {
                    CallSpec::new(
                        m.name.clone(),
                        m.params
                            .iter()
                            .map(|p| jcc_core::vm::Value::default_of(p.ty))
                            .collect(),
                    )
                })
                .collect();
            let mut vm = Vm::new(
                compiled,
                vec![ThreadSpec {
                    name: "t".into(),
                    calls,
                }],
            );
            let out = vm.run(&jcc_core::vm::RunConfig {
                scheduler: jcc_core::vm::Scheduler::RoundRobin,
                max_steps: 5_000,
            });
            let _ = out.verdict;
        }
    }
}
