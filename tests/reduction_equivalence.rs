//! Reduction equivalence: the state-space reductions (ample-set
//! partial-order reduction and thread-symmetry quotienting) must preserve
//! *which failure classes exist* — completed / deadlock / fault / cycle /
//! inescapable-cycle — for every component and mutant, even though state,
//! transition and path counts legitimately shrink.
//!
//! VM side: [`ExploreConfig::symmetry`] + [`ExploreConfig::ample`] against
//! the plain exhaustive search, over the full corpus (seed monitors + zoo)
//! and a capped mutant slice in CI; the full mutant sweep runs behind
//! `--ignored`. Petri side: a fully reduced [`ReachGraph`] must stay
//! byte-deterministic across worker counts.

use jcc_core::components::zoo::full_corpus;
use jcc_core::model::mutate::all_mutants;
use jcc_core::petri::{JavaNet, Parallelism, ReachGraph, ReachLimits, Reduction};
use jcc_core::testgen::corpus::space_for;
use jcc_core::testgen::scenario::ScenarioSpace;
use jcc_core::vm::{
    compile, explore, CompiledComponent, ExploreConfig, ExploreResult, ThreadSpec, Vm,
};

/// The failure-class existence booleans a sound reduction must preserve.
fn classes(r: &ExploreResult) -> (bool, bool, bool, bool, bool) {
    (
        r.completed_paths > 0,
        r.deadlock_paths > 0,
        r.fault_paths > 0,
        r.cycle_paths > 0,
        r.inescapable_cycles > 0,
    )
}

fn reduced_config() -> ExploreConfig {
    ExploreConfig {
        symmetry: true,
        ample: true,
        ..ExploreConfig::default()
    }
}

/// Threads all share one display name so identical call sessions form
/// symmetry groups (ThreadSpec equality includes the name; names are
/// display-only, so this costs nothing and exercises the quotient).
fn vm_for(compiled: &CompiledComponent, space: &ScenarioSpace) -> Vm {
    Vm::new(
        compiled.clone(),
        space
            .templates
            .iter()
            .map(|session| ThreadSpec {
                name: "w".into(),
                calls: session.clone(),
            })
            .collect(),
    )
}

/// Compare the reduced exploration against the full one. Returns false
/// when the full search truncated (the comparison would be meaningless);
/// callers decide whether that is acceptable.
fn check_equivalent(label: &str, compiled: &CompiledComponent, space: &ScenarioSpace) -> bool {
    let full = explore(vm_for(compiled, space), &ExploreConfig::default(), None);
    if full.truncated {
        return false;
    }
    let reduced = explore(vm_for(compiled, space), &reduced_config(), None);
    // Every reduced path is a real path of at most the same length over a
    // subset of the reachable states, so a complete full search implies a
    // complete reduced one.
    assert!(!reduced.truncated, "{label}: reduced search truncated");
    assert_eq!(
        classes(&full),
        classes(&reduced),
        "{label}: failure classes diverged\nfull: {full:?}\nreduced: {reduced:?}"
    );
    assert!(
        reduced.states <= full.states,
        "{label}: reduction grew the state count ({} > {})",
        reduced.states,
        full.states
    );
    true
}

fn component_named(name: &str) -> jcc_core::model::ast::Component {
    full_corpus()
        .into_iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("{name} not in the corpus"))
        .1
}

/// Every corpus component (seed monitors and the zoo), unmutated: the
/// reduced exploration reports exactly the same failure classes.
#[test]
fn reduced_exploration_preserves_classes_for_every_corpus_component() {
    for (name, component) in full_corpus() {
        let compiled = compile(&component).unwrap();
        let space = space_for(name).expect("corpus component is registered");
        assert!(
            check_equivalent(name, &compiled, &space),
            "{name}: full search truncated — limits too small for the corpus"
        );
    }
}

/// CI-run capped slice: every mutant of two cheap components through the
/// reduced-vs-full comparison (mirrors the capped parallel-determinism
/// slice). The exhaustive 283-mutant sweep is the ignored test below.
#[test]
fn capped_mutant_slice_preserves_classes_under_reduction() {
    for name in ["BoundedBuffer", "FutureCell"] {
        let component = component_named(name);
        let space = space_for(name).expect("corpus component is registered");
        for (mutation, mutant) in all_mutants(&component) {
            let compiled = compile(&mutant).unwrap();
            check_equivalent(
                &format!("{name}/{}", mutation.label()),
                &compiled,
                &space,
            );
        }
    }
}

/// Stress: every mutant of every corpus component. Run with
/// `cargo test -- --ignored`.
#[test]
#[ignore = "slow: reduced-vs-full over every corpus mutant"]
fn stress_every_corpus_mutant_preserves_classes_under_reduction() {
    let mut compared = 0usize;
    let mut skipped = 0usize;
    for (name, component) in full_corpus() {
        let space = space_for(name).expect("corpus component is registered");
        for (mutation, mutant) in all_mutants(&component) {
            let compiled = compile(&mutant).unwrap();
            if check_equivalent(&format!("{name}/{}", mutation.label()), &compiled, &space) {
                compared += 1;
            } else {
                skipped += 1;
            }
        }
    }
    println!("reduction equivalence: {compared} mutants compared, {skipped} truncated");
    assert!(compared > 0);
}

/// Petri side: the fully reduced reach graph (ample + symmetry) is
/// byte-identical across worker counts — reduction composes with the
/// parallel engine's canonical renumbering.
#[test]
fn reduced_reach_graph_is_deterministic_across_worker_counts() {
    for n in [2usize, 4] {
        let j = JavaNet::new(n);
        let limits = |threads: usize| ReachLimits {
            parallelism: Parallelism::with_threads(threads),
            reduction: Reduction::full(Some(j.thread_symmetry())),
            ..ReachLimits::default()
        };
        let reference = ReachGraph::explore(j.net(), limits(1));
        let full = ReachGraph::explore(j.net(), ReachLimits::default());
        assert!(
            reference.markings().len() < full.markings().len(),
            "n={n}: reduction must shrink the graph"
        );
        for threads in [2usize, 4] {
            let g = ReachGraph::explore(j.net(), limits(threads));
            assert_eq!(g.stats(), reference.stats(), "n={n} threads={threads}");
            assert_eq!(g.markings(), reference.markings(), "n={n} threads={threads}");
            for i in 0..reference.markings().len() {
                assert_eq!(g.successors(i), reference.successors(i), "n={n} state {i}");
            }
        }
    }
}
