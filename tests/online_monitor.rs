//! Integration: the always-on online detectors agree with the post-hoc
//! classifier.
//!
//! Every corpus component's VM trace is replayed through the lock-free
//! capture path (`EventLog::log_as`) and consumed twice: incrementally by
//! [`jcc_core::runtime::OnlineMonitor`] and post-hoc by
//! [`jcc_core::detect::classify_runtime_events`]. On a fully-sampled,
//! no-drop stream the two verdict lists must **byte-match**. Under
//! degradation — injected capture gaps or probabilistic sampling — the
//! online verdicts may shrink but must never invent a finding: every
//! degraded race variable, lock-order cycle, and lost monitor must appear
//! in the full-stream result.

use std::collections::BTreeSet;

use jcc_core::components::zoo::full_corpus;
use jcc_core::detect::classify_runtime_events;
use jcc_core::runtime::{Event, EventKind, EventLog, MonitorId, OnlineMonitor};
use jcc_core::testgen::corpus::{registered, space_for};
use jcc_core::vm::{compile, CallSpec, RunConfig, ThreadSpec, TraceEvent, TraceEventKind, Vm};

/// Replay a VM trace into a fresh capture log via `log_as`, mapping lock
/// indices to monitor ids directly (the same mapping `from_vm_trace`
/// uses), and VM thread indices to 1-based logical thread ids.
fn replay(log: &EventLog, trace: &[TraceEvent]) {
    for e in trace {
        let thread = e.thread as u64 + 1;
        match &e.kind {
            TraceEventKind::Transition { t, lock } => {
                log.log_as(thread, MonitorId(*lock as u64), EventKind::Transition(*t));
            }
            TraceEventKind::NotifyIssued { lock, all, waiters } => {
                log.log_as(
                    thread,
                    MonitorId(*lock as u64),
                    EventKind::NotifyIssued {
                        all: *all,
                        waiters: *waiters,
                    },
                );
            }
            TraceEventKind::FieldRead { field } => {
                log.log_as(thread, MonitorId(0), EventKind::Read { var: field.clone() });
            }
            TraceEventKind::FieldWrite { field } => {
                log.log_as(
                    thread,
                    MonitorId(0),
                    EventKind::Write { var: field.clone() },
                );
            }
            TraceEventKind::MethodStart { method } => {
                log.log_as(
                    thread,
                    MonitorId(0),
                    EventKind::MethodStart {
                        method: method.clone(),
                    },
                );
            }
            TraceEventKind::MethodEnd { method } => {
                log.log_as(
                    thread,
                    MonitorId(0),
                    EventKind::MethodEnd {
                        method: method.clone(),
                    },
                );
            }
            _ => {}
        }
    }
}

/// One VM run per corpus component: one thread per session template from
/// the canonical scenario registry, default (deterministic) scheduling.
fn corpus_traces() -> Vec<(String, Vec<TraceEvent>)> {
    full_corpus()
        .into_iter()
        .map(|(name, component)| {
            let compiled = compile(&component).unwrap();
            let space = space_for(name).expect("corpus component is registered");
            let mut vm = Vm::new(
                compiled,
                space
                    .templates
                    .iter()
                    .enumerate()
                    .map(|(i, session)| ThreadSpec {
                        name: format!("t{i}"),
                        calls: session.clone(),
                    })
                    .collect(),
            );
            let out = vm.run(&RunConfig::default());
            (name.to_string(), out.trace)
        })
        .collect()
}

/// The FF-T5 walkthrough stream from `examples/timeline_trace.rs`, as the
/// capture layer records the losing schedule: the opener's notification
/// fires while the wait set is empty, then the passer waits forever.
fn gate_walkthrough(log: &EventLog) {
    use jcc_core::petri::Transition as T;
    let gate = MonitorId(9);
    // Opener: enter, write the flag, notify into an empty wait set, leave.
    log.log_as(2, gate, EventKind::Transition(T::T2));
    log.log_as(
        2,
        gate,
        EventKind::Write {
            var: "open".to_string(),
        },
    );
    log.log_as(2, gate, EventKind::NotifyIssued { all: false, waiters: 0 });
    log.log_as(2, gate, EventKind::Transition(T::T4));
    // Passer: enter, wait (T3) — and nobody will ever wake it.
    log.log_as(1, gate, EventKind::Transition(T::T2));
    log.log_as(1, gate, EventKind::Transition(T::T3));
}

fn verdict_strings(online: &OnlineMonitor) -> Vec<String> {
    online.verdicts().iter().map(|f| f.to_string()).collect()
}

fn posthoc_strings(events: &[Event]) -> Vec<String> {
    classify_runtime_events(events)
        .iter()
        .map(|f| f.to_string())
        .collect()
}

/// Tentpole differential guarantee: on a fully-sampled no-drop stream the
/// online verdicts byte-match the post-hoc classification — for every
/// corpus component and the Gate walkthrough.
#[test]
fn online_verdicts_byte_match_posthoc_on_all_corpus_streams() {
    let mut checked = 0;
    for (name, trace) in corpus_traces() {
        let log = EventLog::new();
        replay(&log, &trace);
        assert_eq!(log.drop_count(), 0, "{name}: replay must not drop");
        assert_eq!(log.sampled_out_count(), 0, "{name}: rate 1 keeps all");
        let events = log.snapshot();
        assert!(!events.is_empty(), "{name}: trace produced no events");
        let mut online = OnlineMonitor::default();
        online.observe_all(&events);
        assert!(!online.degraded(), "{name}: no gaps were injected");
        assert_eq!(
            verdict_strings(&online),
            posthoc_strings(&events),
            "{name}: online and post-hoc verdicts diverge"
        );
        checked += 1;
    }
    assert_eq!(
        checked,
        registered().len(),
        "every registered corpus component must be exercised"
    );
}

#[test]
fn gate_walkthrough_byte_matches_and_reports_the_lost_notification() {
    let log = EventLog::new();
    gate_walkthrough(&log);
    let events = log.snapshot();
    let mut online = OnlineMonitor::default();
    online.observe_all(&events);
    let verdicts = verdict_strings(&online);
    assert_eq!(verdicts, posthoc_strings(&events));
    assert!(
        verdicts.iter().any(|v| v.starts_with("FF-T5:")),
        "the lost notification must be classified: {verdicts:?}"
    );
    // The alert fired mid-run, at the notify event itself — not at the end.
    let alert = online
        .alerts()
        .iter()
        .find(|a| a.finding.class.code() == "FF-T5")
        .expect("an FF-T5 alert was raised while the run was still going");
    assert!(matches!(
        events[alert.seq as usize].kind,
        EventKind::NotifyIssued { waiters: 0, .. }
    ));
}

/// Degraded stream: replace a window of one thread's events with a
/// `CaptureGap` record attributed to that thread — exactly what the ring
/// produces when a producer overruns its buffer.
fn inject_gap(events: &[Event], victim: u64) -> Vec<Event> {
    let victim_positions: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.thread == victim)
        .map(|(i, _)| i)
        .collect();
    assert!(
        victim_positions.len() >= 3,
        "victim thread must have enough events to window"
    );
    // Drop the middle third of the victim's events.
    let lo = victim_positions.len() / 3;
    let hi = (2 * victim_positions.len()) / 3;
    let window: BTreeSet<usize> = victim_positions[lo..hi].iter().copied().collect();
    let gap_at = victim_positions[lo];
    let mut out = Vec::with_capacity(events.len());
    for (i, e) in events.iter().enumerate() {
        if i == gap_at {
            out.push(Event {
                seq: e.seq,
                thread: victim,
                monitor: MonitorId(0),
                kind: EventKind::CaptureGap {
                    dropped: window.len() as u64,
                },
            });
        } else if !window.contains(&i) {
            out.push(e.clone());
        }
    }
    out
}

fn subset_of_strings(sub: &[String], sup: &[String], what: &str, name: &str) {
    let sup: BTreeSet<&String> = sup.iter().collect();
    for s in sub {
        assert!(sup.contains(s), "{name}: degraded {what} {s:?} not in full run");
    }
}

/// Degraded-mode soundness: with an injected capture gap the online
/// verdict *subjects* (race variables, cycle lock sets, lost monitors)
/// are a subset of the full-stream subjects — never a false positive.
#[test]
fn injected_drops_degrade_to_a_subset_never_a_false_positive() {
    for (name, trace) in corpus_traces() {
        let log = EventLog::new();
        replay(&log, &trace);
        let events = log.snapshot();
        let mut full = OnlineMonitor::default();
        full.observe_all(&events);

        // Gap out each thread in turn that has enough events to window.
        let threads: BTreeSet<u64> = events.iter().map(|e| e.thread).collect();
        for victim in threads {
            let n = events.iter().filter(|e| e.thread == victim).count();
            if n < 3 {
                continue;
            }
            let degraded_events = inject_gap(&events, victim);
            let mut degraded = OnlineMonitor::default();
            degraded.observe_all(&degraded_events);
            assert!(degraded.degraded(), "{name}: gap must mark degraded mode");
            assert!(degraded.dropped_events() > 0);

            subset_of_strings(
                &degraded.race_vars(),
                &full.race_vars(),
                "race var",
                &name,
            );
            let full_cycles = full.cycle_lock_sets();
            for cycle in degraded.cycle_lock_sets() {
                let locks: BTreeSet<u64> = cycle.iter().copied().collect();
                assert!(
                    full_cycles
                        .iter()
                        .any(|fc| locks.iter().all(|l| fc.contains(l))),
                    "{name}: degraded cycle {cycle:?} not within any full cycle {full_cycles:?}"
                );
            }
            let full_lost: BTreeSet<u64> = full.lost_monitors().into_iter().collect();
            for m in degraded.lost_monitors() {
                assert!(
                    full_lost.contains(&m),
                    "{name}: degraded lost monitor {m} not in full run"
                );
            }
        }
    }
}

/// Probabilistic sampling thins only data events, so a sampled stream's
/// verdict subjects are likewise a subset of the fully-sampled ones.
#[test]
fn sampled_streams_never_invent_findings() {
    for (name, trace) in corpus_traces() {
        let full_log = EventLog::new();
        replay(&full_log, &trace);
        let full_events = full_log.snapshot();
        let mut full = OnlineMonitor::default();
        full.observe_all(&full_events);

        for shift in [1u32, 3] {
            let log = EventLog::new();
            log.set_sampling(shift, 0x5eed_0000 + shift as u64);
            replay(&log, &trace);
            let events = log.snapshot();
            let mut sampled = OnlineMonitor::default();
            sampled.observe_all(&events);

            // Transitions and notifications are never sampled out, so the
            // held-lock structure is exact.
            let count = |evs: &[Event], pred: fn(&EventKind) -> bool| {
                evs.iter().filter(|e| pred(&e.kind)).count()
            };
            let is_sync = |k: &EventKind| {
                matches!(k, EventKind::Transition(_) | EventKind::NotifyIssued { .. })
            };
            assert_eq!(
                count(&events, is_sync),
                count(&full_events, is_sync),
                "{name} shift={shift}: sync events must survive sampling"
            );

            subset_of_strings(
                &sampled.race_vars(),
                &full.race_vars(),
                "race var",
                &name,
            );
            let full_lost: BTreeSet<u64> = full.lost_monitors().into_iter().collect();
            assert!(
                sampled
                    .lost_monitors()
                    .iter()
                    .all(|m| full_lost.contains(m)),
                "{name} shift={shift}: sampling must not invent lost notifications"
            );
        }
    }
}

/// The capture path itself is deterministic for a replay: two identical
/// replays produce identical snapshots and identical verdicts.
#[test]
fn replay_capture_is_deterministic() {
    let (name, trace) = corpus_traces().remove(0);
    let runs: Vec<Vec<String>> = (0..2)
        .map(|_| {
            let log = EventLog::new();
            replay(&log, &trace);
            let events = log.snapshot();
            let mut online = OnlineMonitor::default();
            online.observe_all(&events);
            verdict_strings(&online)
        })
        .collect();
    assert_eq!(runs[0], runs[1], "{name}: replay verdicts must be stable");
}

#[test]
fn scenario_spec_sanity() {
    // Mirrors the registry-completeness invariant the suite relies on.
    for (name, _) in full_corpus() {
        assert!(space_for(name).is_some(), "{name} missing from registry");
    }
    let space = space_for("ProducerConsumer").unwrap();
    assert!(space
        .templates
        .iter()
        .flatten()
        .any(|c: &CallSpec| c.method == "receive"));
}
