//! Integration: the static Table-1 analyzer (`jcc-analyze`) end to end —
//! the zero-false-positive gate over the clean corpus, positive/negative
//! fixtures per failure class, mutant-seeded detection, and property
//! tests (no panics, byte-identical determinism) over the mutant corpus.

use std::collections::BTreeSet;

use proptest::prelude::*;

use jcc_core::analyze::{analyze, AnalysisReport, Severity};
use jcc_core::components::zoo::full_corpus;
use jcc_core::model::mutate::{all_mutants, MutationKind};
use jcc_core::model::{examples, parse_component, Component};

/// Check codes present in `report` at `min` severity or above.
fn codes(report: &AnalysisReport, min: Severity) -> BTreeSet<String> {
    report
        .at_least(min)
        .map(|d| d.check.code().to_string())
        .collect()
}

// ---------- the CI gate: no High diagnostics on correct code ----------

#[test]
fn clean_corpus_earns_zero_high_severity_diagnostics() {
    // The full corpus: the five seed monitors plus the component zoo.
    for (name, c) in full_corpus() {
        let report = analyze(&c);
        assert_eq!(
            report.count(Severity::High),
            0,
            "{name} (correct) got High diagnostics:\n{}",
            report.render()
        );
    }
}

// ---------- per-class fixtures: positive AND negative ----------

#[test]
fn lock_order_cycle_flags_cyclic_specimens_only() {
    // Positive: both deadlock specimens carry a cycle.
    let r = analyze(&examples::lock_order_deadlock());
    assert!(codes(&r, Severity::High).contains("lock-order-cycle"), "{}", r.render());
    assert!(r.classes(Severity::High).contains("FF-T2"));
    let r = analyze(&examples::dining_deadlock());
    assert!(codes(&r, Severity::High).contains("lock-order-cycle"), "{}", r.render());
    // Negative: the ordered variant acquires the same locks acyclically.
    let r = analyze(&examples::dining_ordered());
    assert!(!codes(&r, Severity::High).contains("lock-order-cycle"), "{}", r.render());
    assert_eq!(r.count(Severity::High), 0);
}

#[test]
fn unlocked_field_access_flags_the_racy_counter_only() {
    // Positive: increment touches `count` without the lock that get() uses.
    let r = analyze(&examples::racy_counter());
    assert!(codes(&r, Severity::High).contains("unlocked-field-access"), "{}", r.render());
    assert!(r.classes(Severity::High).contains("FF-T1"));
    // Negative: the same counter with both methods synchronized.
    let safe = parse_component(
        "class SafeCounter {
           var count: int = 0;
           synchronized fn increment() { count = count + 1; }
           synchronized fn get() -> int { return count; }
         }",
    )
    .unwrap();
    let r = analyze(&safe);
    assert_eq!(r.count(Severity::High), 0, "{}", r.render());
}

#[test]
fn monitor_not_held_flags_unsynchronized_wait_only() {
    // Positive: wait without the monitor (validate() would reject this too;
    // the analyzer localizes it with a class and severity).
    let bad = parse_component("class W { fn m() { wait; } }").unwrap();
    let r = analyze(&bad);
    assert!(codes(&r, Severity::High).contains("monitor-not-held"), "{}", r.render());
    assert!(r.classes(Severity::High).contains("FF-T1"));
    // Negative: a disciplined guarded wait with a notifier.
    let good = parse_component(
        "class G {
           var ready: bool = false;
           synchronized fn consume() { while (!ready) { wait; } ready = false; }
           synchronized fn produce() { ready = true; notifyAll; }
         }",
    )
    .unwrap();
    let r = analyze(&good);
    assert_eq!(r.count(Severity::High), 0, "{}", r.render());
}

#[test]
fn nested_monitor_wait_flags_wait_holding_a_second_lock() {
    // Positive: waits on `this` while still holding `a` — the classic
    // nested-monitor deadlock (FF-T2).
    let bad = parse_component(
        "class N {
           lock a;
           var ready: bool = false;
           synchronized fn m() {
             synchronized (a) {
               while (!ready) { wait; }
             }
           }
           synchronized fn poke() { ready = true; notifyAll; }
         }",
    )
    .unwrap();
    let r = analyze(&bad);
    assert!(codes(&r, Severity::High).contains("nested-monitor-wait"), "{}", r.render());
    assert!(r.classes(Severity::High).contains("FF-T2"));
    // Negative: the corpus never waits with an extra lock held.
    for (name, c) in examples::corpus() {
        let r = analyze(&c);
        assert!(!codes(&r, Severity::High).contains("nested-monitor-wait"), "{name}");
    }
}

#[test]
fn unconditional_wait_flags_bare_wait_only() {
    // Positive: a wait with no guard predicate at all (EF-T3).
    let bad = parse_component(
        "class U {
           synchronized fn park() { wait; }
           synchronized fn poke() { notifyAll; }
         }",
    )
    .unwrap();
    let r = analyze(&bad);
    assert!(codes(&r, Severity::High).contains("unconditional-wait"), "{}", r.render());
    assert!(r.classes(Severity::High).contains("EF-T3"));
    // Negative: every corpus wait re-checks a predicate.
    for (name, c) in examples::corpus() {
        let r = analyze(&c);
        assert!(!codes(&r, Severity::High).contains("unconditional-wait"), "{name}");
    }
}

#[test]
fn wait_not_in_loop_flags_if_guarded_wait_only() {
    // Positive: guarded, but by `if` — the post-wake re-check is missing
    // (EF-T5). Subsumption: NOT also reported as unconditional.
    let bad = parse_component(
        "class OneShot {
           var fired: bool = false;
           synchronized fn arm() { if (!fired) { wait; } }
           synchronized fn fire() { fired = true; notifyAll; }
         }",
    )
    .unwrap();
    let r = analyze(&bad);
    let got = codes(&r, Severity::Medium);
    assert!(got.contains("wait-not-in-loop"), "{}", r.render());
    assert!(!got.contains("unconditional-wait"), "{}", r.render());
    assert!(r.classes(Severity::Medium).contains("EF-T5"));
    // Negative: while-guarded waits are fine.
    let r = analyze(&examples::producer_consumer());
    assert!(!codes(&r, Severity::Medium).contains("wait-not-in-loop"), "{}", r.render());
}

#[test]
fn no_notifier_for_wait_flags_orphaned_waiters_only() {
    // Positive: nothing in the component ever notifies the waited lock.
    let bad = parse_component(
        "class Orphan {
           var ready: bool = false;
           synchronized fn consume() { while (!ready) { wait; } }
         }",
    )
    .unwrap();
    let r = analyze(&bad);
    assert!(codes(&r, Severity::High).contains("no-notifier-for-wait"), "{}", r.render());
    assert!(r.classes(Severity::High).contains("FF-T5"));
    // Negative: every corpus wait has a notifier on the same lock.
    for (name, c) in examples::corpus() {
        let r = analyze(&c);
        assert!(!codes(&r, Severity::High).contains("no-notifier-for-wait"), "{name}");
    }
}

// ---------- mutant-seeded detection: the check fires on the mutant,
// ---------- never on its correct parent ----------

/// For each corpus mutant of `kind`, assert the mutant's report contains a
/// (check, class, method) identity at >= Medium that the parent's lacks,
/// and that `expected_check` is among the new identities' checks.
fn assert_mutants_raise(kind: MutationKind, expected_check: &str) {
    let mut seen = 0;
    for (name, parent) in examples::corpus() {
        let parent_ids = analyze(&parent).identities(Severity::Medium);
        for (mutation, mutant) in all_mutants(&parent) {
            if mutation.kind != kind {
                continue;
            }
            seen += 1;
            let mutant_ids = analyze(&mutant).identities(Severity::Medium);
            let new: Vec<_> = mutant_ids.difference(&parent_ids).collect();
            assert!(
                new.iter().any(|(check, _, _)| check == expected_check),
                "{name} / {}: expected new `{expected_check}`, got {new:?}",
                mutation.label()
            );
        }
    }
    assert!(seen > 0, "no {kind:?} mutants in the corpus");
}

#[test]
fn spurious_wait_mutants_raise_unconditional_wait() {
    assert_mutants_raise(MutationKind::SpuriousWait, "unconditional-wait");
}

#[test]
fn if_instead_of_while_mutants_raise_wait_not_in_loop() {
    assert_mutants_raise(MutationKind::WaitIfInsteadOfWhile, "wait-not-in-loop");
}

#[test]
fn hold_lock_forever_mutants_raise_loop_holds_lock_forever() {
    assert_mutants_raise(MutationKind::HoldLockForever, "loop-holds-lock-forever");
}

#[test]
fn redundant_sync_mutants_raise_redundant_sync() {
    assert_mutants_raise(MutationKind::AddRedundantSync, "redundant-sync");
}

#[test]
fn early_return_mutants_raise_unreachable_after_return() {
    assert_mutants_raise(MutationKind::EarlyReturn, "unreachable-after-return");
}

#[test]
fn drop_notify_mutants_raise_an_ff_t5_check() {
    // The concrete check depends on whether the dropped notify was the
    // *only* notifier of its lock (no-notifier-for-wait) or one of several
    // (missed-notification); both carry FF-T5.
    for (name, parent) in examples::corpus() {
        let parent_ids = analyze(&parent).identities(Severity::Medium);
        for (mutation, mutant) in all_mutants(&parent) {
            if mutation.kind != MutationKind::DropNotify {
                continue;
            }
            let mutant_ids = analyze(&mutant).identities(Severity::Medium);
            let new: Vec<_> = mutant_ids.difference(&parent_ids).collect();
            assert!(
                new.iter().any(|(_, class, _)| class == "FF-T5"),
                "{name} / {}: expected a new FF-T5 diagnostic, got {new:?}",
                mutation.label()
            );
        }
    }
}

// ---------- zoo fixtures: mutant positive, clean parent negative ----------

fn zoo_component(name: &str) -> Component {
    full_corpus()
        .into_iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("{name} not in the corpus"))
        .1
}

/// For each mutant of `kind` seeded into the named zoo component, assert
/// the analyzer reports a new `(check, class, method)` identity whose
/// check is `expected_check` — and, as the negative, that the clean parent
/// earns zero High diagnostics.
fn assert_zoo_mutants_raise(name: &str, kind: MutationKind, expected_check: &str) {
    let parent = zoo_component(name);
    let parent_report = analyze(&parent);
    assert_eq!(
        parent_report.count(Severity::High),
        0,
        "{name} (correct) got High diagnostics:\n{}",
        parent_report.render()
    );
    let parent_ids = parent_report.identities(Severity::Medium);
    let mut seen = 0;
    for (mutation, mutant) in all_mutants(&parent) {
        if mutation.kind != kind {
            continue;
        }
        seen += 1;
        let mutant_ids = analyze(&mutant).identities(Severity::Medium);
        let new: Vec<_> = mutant_ids.difference(&parent_ids).collect();
        assert!(
            new.iter().any(|(check, _, _)| check == expected_check),
            "{name} / {}: expected new `{expected_check}`, got {new:?}",
            mutation.label()
        );
    }
    assert!(seen > 0, "no {kind:?} mutants on {name}");
}

#[test]
fn future_cell_spurious_wait_mutants_raise_unconditional_wait() {
    assert_zoo_mutants_raise("FutureCell", MutationKind::SpuriousWait, "unconditional-wait");
}

#[test]
fn thread_pool_if_guarded_wait_mutants_raise_wait_not_in_loop() {
    assert_zoo_mutants_raise(
        "ThreadPool",
        MutationKind::WaitIfInsteadOfWhile,
        "wait-not-in-loop",
    );
}

#[test]
fn bounded_stack_drop_notify_mutants_raise_an_ff_t5_check() {
    // Dropping one of BoundedStack's two broadcasts leaves the other, so
    // the analyzer reports missed-notification (or, were it the only
    // notifier, no-notifier-for-wait) — either way a new FF-T5 identity.
    let parent = zoo_component("BoundedStack");
    let parent_ids = analyze(&parent).identities(Severity::Medium);
    let mut seen = 0;
    for (mutation, mutant) in all_mutants(&parent) {
        if mutation.kind != MutationKind::DropNotify {
            continue;
        }
        seen += 1;
        let mutant_ids = analyze(&mutant).identities(Severity::Medium);
        let new: Vec<_> = mutant_ids.difference(&parent_ids).collect();
        assert!(
            new.iter().any(|(_, class, _)| class == "FF-T5"),
            "BoundedStack / {}: expected a new FF-T5 diagnostic, got {new:?}",
            mutation.label()
        );
    }
    assert!(seen > 0, "no DropNotify mutants on BoundedStack");
}

#[test]
fn exchanger_hold_lock_forever_mutants_raise_loop_holds_lock_forever() {
    assert_zoo_mutants_raise(
        "Exchanger",
        MutationKind::HoldLockForever,
        "loop-holds-lock-forever",
    );
}

// ---------- properties: no panics, deterministic output ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Analyzing any corpus component or any of its mutants never panics,
    /// and two runs over the same input render byte-identically (text and
    /// JSON both).
    #[test]
    fn analyzer_is_total_and_deterministic_over_mutants(
        component_index in 0usize..5,
        mutant_selector in 0usize..65,
    ) {
        let corpus = examples::corpus();
        let (_, parent) = &corpus[component_index];
        // Selector 0 analyzes the unmutated parent; anything else picks a
        // mutant (wrapping around the component's mutant count).
        let subject = if mutant_selector == 0 {
            parent.clone()
        } else {
            let mutants = all_mutants(parent);
            mutants[(mutant_selector - 1) % mutants.len()].1.clone()
        };
        let a = analyze(&subject);
        let b = analyze(&subject);
        prop_assert_eq!(a.render(), b.render());
        prop_assert_eq!(a.to_json_string(), b.to_json_string());
        // The JSON is schema-tagged and structurally parseable.
        let parsed = jcc_core::obs::json::Json::parse(&a.to_json_string()).unwrap();
        prop_assert_eq!(
            parsed.get("schema").and_then(|s| s.as_str()),
            Some(jcc_core::analyze::SCHEMA)
        );
    }
}
