//! Observation must never change results: with `jcc-obs` recording at any
//! level, every engine produces results *identical* to an unobserved run —
//! same ReachGraph, same exploration tallies — and the published counters
//! agree exactly with the results they describe. (The obs design records
//! into local tallies flushed after the fact, so this is by construction;
//! these tests keep it that way.)

use std::sync::{Mutex, MutexGuard, OnceLock};

use jcc_core::model::examples;
use jcc_core::obs;
use jcc_core::petri::{JavaNet, Parallelism, ReachGraph, ReachLimits};
use jcc_core::vm::{
    compile, explore, explore_portfolio, timeline_of_outcome, CallSpec, ExploreConfig,
    PortfolioConfig, ThreadSpec, Value, Vm,
};

/// Serializes tests in this binary: they flip the process-global obs level.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Run `f` with obs at `level` on a freshly reset registry, restoring the
/// default (off) level afterwards.
fn with_level<T>(level: obs::ObsLevel, f: impl FnOnce() -> T) -> T {
    obs::set_level(level);
    obs::global().reset();
    let _ = obs::drain_trace();
    let result = f();
    obs::set_level(obs::ObsLevel::Off);
    result
}

/// Everything observable about a reach graph, in canonical order.
type GraphFingerprint = (Vec<Vec<u32>>, Vec<Vec<(usize, usize)>>, Vec<usize>);

fn graph_fingerprint(g: &ReachGraph) -> GraphFingerprint {
    let markings = g.markings().iter().map(|m| m.0.to_vec()).collect::<Vec<_>>();
    let successors = (0..g.markings().len())
        .map(|i| {
            g.successors(i)
                .iter()
                .map(|(t, j)| (t.index(), *j))
                .collect::<Vec<_>>()
        })
        .collect::<Vec<_>>();
    (markings, successors, g.dead_states())
}

fn limits(threads: usize) -> ReachLimits {
    ReachLimits {
        parallelism: Parallelism::with_threads(threads),
        ..ReachLimits::default()
    }
}

#[test]
fn reach_graph_unchanged_by_observation() {
    let _guard = obs_lock();
    for n in 1..=3 {
        let j = JavaNet::new(n);
        let reference = with_level(obs::ObsLevel::Off, || ReachGraph::explore(j.net(), limits(1)));
        let reference_fp = graph_fingerprint(&reference);
        for level in [obs::ObsLevel::Summary, obs::ObsLevel::Trace] {
            for threads in [1usize, 4] {
                let g = with_level(level, || ReachGraph::explore(j.net(), limits(threads)));
                assert_eq!(
                    graph_fingerprint(&g),
                    reference_fp,
                    "n={n} level={} threads={threads}",
                    level.name()
                );
            }
        }
    }
}

#[test]
fn reach_counters_agree_with_stats() {
    let _guard = obs_lock();
    let j = JavaNet::new(2);
    let g = with_level(obs::ObsLevel::Summary, || {
        ReachGraph::explore(j.net(), limits(1))
    });
    let reg = obs::global();
    assert_eq!(reg.counter("petri.reach.explorations").get(), 1);
    assert_eq!(
        reg.counter("petri.reach.states").get(),
        g.stats().states as u64
    );
    assert_eq!(reg.counter("petri.reach.edges").get(), g.stats().edges as u64);
    // The sequential BFS timed itself into a phase histogram.
    let phases = reg.histogram_values();
    assert!(
        phases.iter().any(|(name, s)| name == "span.petri.reach.sequential" && s.count == 1),
        "missing reach span: {:?}",
        phases.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );
}

fn pc_vm() -> Vm {
    let c = examples::producer_consumer();
    Vm::new(
        compile(&c).unwrap(),
        vec![
            ThreadSpec {
                name: "c".into(),
                calls: vec![CallSpec::new("receive", vec![])],
            },
            ThreadSpec {
                name: "p".into(),
                calls: vec![CallSpec::new("send", vec![Value::Str("ab".into())])],
            },
        ],
    )
}

#[test]
fn explore_tally_unchanged_by_observation() {
    let _guard = obs_lock();
    let reference = with_level(obs::ObsLevel::Off, || {
        explore(pc_vm(), &ExploreConfig::default(), None)
    });
    for level in [obs::ObsLevel::Summary, obs::ObsLevel::Trace] {
        let observed = with_level(level, || explore(pc_vm(), &ExploreConfig::default(), None));
        assert_eq!(
            observed.tally(),
            reference.tally(),
            "level={}",
            level.name()
        );
        // And the flushed counters describe exactly this exploration.
        let reg = obs::global();
        assert_eq!(reg.counter("vm.explore.runs").get(), 1);
        assert_eq!(
            reg.counter("vm.explore.states").get(),
            reference.states as u64
        );
        assert_eq!(
            reg.counter("vm.explore.transitions").get(),
            reference.transitions as u64
        );
        assert_eq!(
            reg.counter("vm.explore.completed_paths").get(),
            reference.completed_paths as u64
        );
    }
}

#[test]
fn vm_transition_counters_populated_under_observation() {
    let _guard = obs_lock();
    with_level(obs::ObsLevel::Summary, || {
        let _ = explore(pc_vm(), &ExploreConfig::default(), None);
    });
    let reg = obs::global();
    // Producer/consumer explorations fire lock requests, acquisitions,
    // waits, releases and notifications across the schedule tree.
    for t in ["T1", "T2", "T3", "T4", "T5"] {
        assert!(
            reg.counter(&format!("vm.transition.{t}")).get() > 0,
            "vm.transition.{t} never fired"
        );
    }
}

#[test]
fn timeline_renderings_identical_at_any_parallelism() {
    // The causal timeline is a pure function of the witness trace, and the
    // witness is deterministic without early_exit — so both the ASCII chart
    // and the Chrome-trace JSON must be byte-identical whatever the worker
    // count and whatever the observation level.
    let _guard = obs_lock();
    let c = examples::lock_order_deadlock();
    let cofgs = jcc_core::cofg::build_component_cofgs(&c);
    let make_vm = || {
        Vm::new(
            compile(&c).unwrap(),
            vec![
                ThreadSpec {
                    name: "f".into(),
                    calls: vec![CallSpec::new("forward", vec![])],
                },
                ThreadSpec {
                    name: "b".into(),
                    calls: vec![CallSpec::new("backward", vec![])],
                },
            ],
        )
    };
    let renderings: Vec<(String, String)> = [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            with_level(obs::ObsLevel::Summary, || {
                let p = explore_portfolio(
                    make_vm(),
                    &PortfolioConfig {
                        explore: ExploreConfig {
                            parallelism: Parallelism::with_threads(threads),
                            ..ExploreConfig::default()
                        },
                        ..PortfolioConfig::default()
                    },
                );
                let census = p.result.expect("census completes without early_exit");
                let witness = census.first_witness().expect("lock-order deadlocks");
                let t = timeline_of_outcome(witness, Some(&cofgs));
                (t.render_ascii(), t.to_chrome_string())
            })
        })
        .collect();
    let (ascii, chrome) = &renderings[0];
    assert!(ascii.contains("causal timeline"), "{ascii}");
    assert!(chrome.contains("\"traceEvents\":"), "{chrome}");
    for (i, (a, c)) in renderings.iter().enumerate().skip(1) {
        assert_eq!(a, ascii, "ascii differs at parallelism index {i}");
        assert_eq!(c, chrome, "chrome trace differs at parallelism index {i}");
    }
}

/// Run `f` with the ENTIRE live-introspection stack active: summary
/// metrics, span tree, progress publication, the stack-mirroring sampling
/// profiler, a heartbeat watcher, and the metrics exposition endpoint
/// (scraped once mid-run to exercise the render path).
fn with_live_stack<T>(f: impl FnOnce() -> T) -> T {
    use std::time::Duration;
    obs::set_level(obs::ObsLevel::Summary);
    obs::global().reset();
    let _ = obs::drain_trace();
    obs::SpanTree::reset();
    obs::set_span_tree(true);
    obs::set_progress(true);
    let _worker = obs::register_thread("determinism-test");
    let profiler = obs::Profiler::start(Duration::from_millis(2), 7);
    let heartbeat = obs::Heartbeat::start(Duration::from_millis(5), |_| {});
    let server = obs::ExposeServer::start(0).expect("bind ephemeral port");
    let result = f();
    let scrape = obs::fetch_metrics(server.local_addr()).expect("scrape mid-stack");
    assert!(scrape.contains("# TYPE"), "scrape renders: {scrape}");
    server.stop();
    heartbeat.stop();
    let _ = profiler.stop();
    obs::set_progress(false);
    obs::set_span_tree(false);
    obs::set_level(obs::ObsLevel::Off);
    result
}

#[test]
fn reach_graph_unchanged_by_live_introspection() {
    // The tentpole guarantee: the full live stack (profiler sampling the
    // engine thread, heartbeats draining the progress cell, exposition
    // serving scrapes) produces byte-identical reachability graphs at any
    // worker count.
    let _guard = obs_lock();
    let j = JavaNet::new(3);
    let reference = with_level(obs::ObsLevel::Off, || ReachGraph::explore(j.net(), limits(1)));
    let reference_fp = graph_fingerprint(&reference);
    for threads in [1usize, 2, 4] {
        let g = with_live_stack(|| ReachGraph::explore(j.net(), limits(threads)));
        assert_eq!(
            graph_fingerprint(&g),
            reference_fp,
            "live stack changed the graph at threads={threads}"
        );
    }
}

#[test]
fn explore_verdicts_unchanged_by_live_introspection() {
    let _guard = obs_lock();
    let reference = with_level(obs::ObsLevel::Off, || {
        explore(pc_vm(), &ExploreConfig::default(), None)
    });
    // Sequential explorer under the live stack.
    let live = with_live_stack(|| explore(pc_vm(), &ExploreConfig::default(), None));
    assert_eq!(live.tally(), reference.tally());
    // Portfolio census at parallelism 1/2/4 under the live stack.
    for threads in [1usize, 2, 4] {
        let census = with_live_stack(|| {
            explore_portfolio(
                pc_vm(),
                &PortfolioConfig {
                    explore: ExploreConfig {
                        parallelism: Parallelism::with_threads(threads),
                        ..ExploreConfig::default()
                    },
                    ..PortfolioConfig::default()
                },
            )
            .result
            .expect("census completes without early_exit")
        });
        assert_eq!(
            census.tally(),
            reference.tally(),
            "live stack changed the verdict at parallelism {threads}"
        );
    }
}

#[test]
fn live_timeline_byte_matches_posthoc_on_the_gate_walkthrough() {
    // The alert-fed live timeline, built while events stream in, must be
    // the post-hoc timeline plus the alert notes — and incremental vs
    // batch construction must agree byte-for-byte on the FF-T5 Gate
    // walkthrough (the paper's lost-notification schedule).
    use jcc_core::petri::Transition as T;
    use jcc_core::runtime::{EventKind, EventLog, LiveTimeline};
    let log = EventLog::new();
    let gate = log.register_monitor("gate");
    log.log_as(2, gate, EventKind::Transition(T::T2));
    log.log_as(
        2,
        gate,
        EventKind::Write {
            var: "open".to_string(),
        },
    );
    log.log_as(2, gate, EventKind::NotifyIssued { all: false, waiters: 0 });
    log.log_as(2, gate, EventKind::Transition(T::T4));
    log.log_as(1, gate, EventKind::Transition(T::T2));
    log.log_as(1, gate, EventKind::Transition(T::T3));

    // Live, one event at a time — as the watcher drains the stream.
    let mut live = LiveTimeline::new();
    for e in log.snapshot() {
        live.observe(&log, &e);
    }
    assert!(live.alerts_stamped() >= 1, "FF-T5 fires mid-run");
    let live_t = live.finish();
    // Post-hoc, all at once from the same log.
    let posthoc_t = LiveTimeline::from_log(&log).finish();
    assert_eq!(live_t.render_ascii(), posthoc_t.render_ascii());
    assert_eq!(live_t.to_chrome_string(), posthoc_t.to_chrome_string());
    // The live rendering carries the alert where the plain post-hoc
    // timeline only carries the builder's lost-notification note.
    let ascii = live_t.render_ascii();
    assert!(ascii.contains("ALERT FF-T5"), "{ascii}");
    let plain = log.timeline().render_ascii();
    assert!(!plain.contains("ALERT"), "{plain}");
    // Lanes, intervals and edges are identical to the plain timeline —
    // the alert notes are a pure addition.
    let plain_t = log.timeline();
    assert_eq!(live_t.lanes, plain_t.lanes);
    assert_eq!(live_t.edges, plain_t.edges);
    assert_eq!(live_t.horizon, plain_t.horizon);
}

#[test]
fn observation_off_records_nothing() {
    let _guard = obs_lock();
    obs::set_level(obs::ObsLevel::Off);
    obs::global().reset();
    let _ = explore(pc_vm(), &ExploreConfig::default(), None);
    let reg = obs::global();
    assert!(
        reg.counter_values().iter().all(|(_, v)| *v == 0),
        "counters must stay zero with obs off: {:?}",
        reg.counter_values()
    );
}
