//! Integration: the native runtime and the VM agree — same CoFG coverage
//! semantics, same transition vocabulary, same completion behaviour.

use std::sync::Arc;

use jcc_core::clock::{Schedule, TestDriver};
use jcc_core::cofg::{build_component_cofgs, CoverageTracker};
use jcc_core::components::{apply_log, ProducerConsumer};
use jcc_core::model::examples;
use jcc_core::petri::Transition;
use jcc_core::runtime::{EventLog, EventKind};
use jcc_core::vm::trace::apply_trace;
use jcc_core::vm::{compile, CallSpec, RunConfig, ThreadSpec, Value, Vm};

/// Run the same logical test natively and on the VM; both must cover the
/// same CoFG arcs.
#[test]
fn coverage_agrees_between_native_and_vm() {
    let component = examples::producer_consumer();

    // VM: consumer waits, producer sends one char.
    let mut vm = Vm::new(
        compile(&component).unwrap(),
        vec![
            ThreadSpec {
                name: "c".into(),
                calls: vec![CallSpec::new("receive", vec![])],
            },
            ThreadSpec {
                name: "p".into(),
                calls: vec![CallSpec::new("send", vec![Value::Str("x".into())])],
            },
        ],
    );
    let out = vm.run(&RunConfig::default());
    let mut vm_cov = CoverageTracker::new(build_component_cofgs(&component));
    apply_trace(&out.trace, &mut vm_cov);

    // Native: same shape, forced by the abstract clock (consumer first).
    let log = EventLog::new();
    let pc = Arc::new(ProducerConsumer::new(&log));
    let c = Arc::clone(&pc);
    let p = Arc::clone(&pc);
    let schedule = Schedule::new()
        .call("receive", 1, move |_| {
            c.receive().unwrap();
        })
        .call("send", 2, move |_| {
            p.send("x").unwrap();
        });
    let (records, _) = TestDriver::new().run(schedule);
    assert!(records.iter().all(|r| !r.suspended()), "{records:?}");
    let mut native_cov = CoverageTracker::new(build_component_cofgs(&component));
    apply_log(&log.snapshot(), &mut native_cov);

    assert_eq!(native_cov.strays, 0);
    assert_eq!(
        vm_cov.covered_arcs(),
        native_cov.covered_arcs(),
        "vm uncovered: {:?}, native uncovered: {:?}",
        vm_cov.uncovered(),
        native_cov.uncovered()
    );
    assert_eq!(vm_cov.uncovered(), native_cov.uncovered());
}

/// The native monitor's transition stream tells the same story as the
/// model: a blocked consumer fires T1,T2 (entry), T3 (wait), T5,T2 (wake +
/// re-acquire), T4 (release).
#[test]
fn native_transition_sequence_matches_model() {
    let log = EventLog::new();
    let pc = Arc::new(ProducerConsumer::new(&log));
    let c = Arc::clone(&pc);
    let p = Arc::clone(&pc);
    let schedule = Schedule::new()
        .call("receive", 1, move |_| {
            c.receive().unwrap();
        })
        .call("send", 2, move |_| {
            p.send("y").unwrap();
        });
    let (_, _) = TestDriver::new().run(schedule);

    // Extract the consumer thread's transitions (the thread that waited).
    let events = log.snapshot();
    let waiter = events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::Transition(Transition::T3) => Some(e.thread),
            _ => None,
        })
        .expect("someone waited");
    let seq: Vec<Transition> = events
        .iter()
        .filter(|e| e.thread == waiter)
        .filter_map(|e| match e.kind {
            EventKind::Transition(t) => Some(t),
            _ => None,
        })
        .collect();
    assert_eq!(
        seq,
        vec![
            Transition::T1,
            Transition::T2,
            Transition::T3,
            Transition::T5,
            Transition::T2,
            Transition::T4
        ],
        "the consumer's life cycle must walk the Figure-1 model"
    );
}

/// Native components agree with their models on visible results.
#[test]
fn native_and_vm_return_same_values() {
    // VM result.
    let component = examples::producer_consumer();
    let mut vm = Vm::new(
        compile(&component).unwrap(),
        vec![
            ThreadSpec {
                name: "p".into(),
                calls: vec![CallSpec::new("send", vec![Value::Str("ab".into())])],
            },
            ThreadSpec {
                name: "c".into(),
                calls: vec![
                    CallSpec::new("receive", vec![]),
                    CallSpec::new("receive", vec![]),
                ],
            },
        ],
    );
    let out = vm.run(&RunConfig::default());
    let vm_chars: Vec<String> = out.results[1]
        .iter()
        .map(|r| match &r.returned {
            Some(Value::Str(s)) => s.clone(),
            other => panic!("{other:?}"),
        })
        .collect();

    // Native result.
    let log = EventLog::new();
    let pc = ProducerConsumer::new(&log);
    pc.send("ab").unwrap();
    let native_chars = vec![
        pc.receive().unwrap().to_string(),
        pc.receive().unwrap().to_string(),
    ];
    assert_eq!(vm_chars, native_chars);
    assert_eq!(native_chars, vec!["a", "b"]);
}
