//! Integration: the paper's artifacts regenerate exactly — Figure 1's net,
//! Table 1's rows, Figure 2's behaviour, Figure 3's arcs.

use jcc_core::cofg::paper::{compare_with_figure3, ArcMatch};
use jcc_core::cofg::{build_component_cofgs, NodeKind};
use jcc_core::hazop::{generate_table, DetectionTechnique};
use jcc_core::model::examples;
use jcc_core::petri::{invariant, JavaNet, ReachGraph, ReachLimits, Transition};
use jcc_core::report::render_table1;

#[test]
fn figure1_net_structure() {
    let j = JavaNet::new(1);
    let net = j.net();
    assert_eq!(net.num_places(), 5);
    assert_eq!(net.num_transitions(), 5);
    // T1: A -> B
    let t1 = j.transition(0, Transition::T1);
    assert_eq!(net.inputs(t1).len(), 1);
    assert_eq!(net.place_name(net.inputs(t1)[0].0), "A");
    assert_eq!(net.place_name(net.outputs(t1)[0].0), "B");
    // T2 consumes B and E.
    let t2 = j.transition(0, Transition::T2);
    let names: Vec<&str> = net.inputs(t2).iter().map(|&(p, _)| net.place_name(p)).collect();
    assert_eq!(names, vec!["B", "E"]);
    // T3 produces D and E (wait releases the lock).
    let t3 = j.transition(0, Transition::T3);
    let names: Vec<&str> = net.outputs(t3).iter().map(|&(p, _)| net.place_name(p)).collect();
    assert_eq!(names, vec!["D", "E"]);
    // T5: D -> B, and only T5 needs another thread (the dashed arc).
    assert!(Transition::T5.requires_other_thread());
}

#[test]
fn figure1_invariants_and_reachability() {
    for threads in 1..=3 {
        let j = JavaNet::new(threads);
        assert!(invariant::is_invariant(j.net(), &j.mutex_invariant()));
        let g = ReachGraph::explore(j.net(), ReachLimits::default());
        assert!(g.is_k_bounded(1), "the model is safe (1-bounded)");
        assert_eq!(g.stats().deadlocks, 0, "raw net is deadlock-free");
        // Mutual exclusion in every reachable marking.
        for m in g.markings() {
            let in_critical = (0..threads)
                .filter(|&t| {
                    m.tokens(j.place(t, jcc_core::petri::ThreadPlace::Critical)) > 0
                })
                .count();
            assert!(in_critical <= 1);
        }
    }
}

#[test]
fn table1_generated_rows_match_paper_content() {
    let rows = generate_table(&JavaNet::new(1));
    assert_eq!(rows.len(), 10);
    let text = render_table1(&rows);

    // Spot-check the paper's distinctive phrases, row by row.
    for phrase in [
        "race condition",                        // FF-T1 consequences
        "Unnecessary synchronization",           // EF-T1 (render may differ in case)
        "permanently suspended",                 // FF-T2 / FF-T5
        "leave the critical section prematurely", // FF-T3
        "suspend indefinitely",                  // EF-T3
        "endless loop",                          // FF-T4 conditions
        "reassigning",                           // EF-T4 conditions
        "prematurely re-enters the critical section", // EF-T5
    ] {
        assert!(
            text.to_lowercase().contains(&phrase.to_lowercase()),
            "Table 1 rendering missing phrase: {phrase}"
        );
    }

    // The testing-notes structure the paper assigns.
    let row = |code: &str| rows.iter().find(|r| r.class.code() == code).unwrap();
    assert!(row("FF-T1").detection.contains(&DetectionTechnique::StaticAnalysis));
    assert!(row("FF-T2").detection.contains(&DetectionTechnique::DynamicAnalysis));
    for code in ["FF-T3", "EF-T3", "FF-T4", "EF-T4", "FF-T5", "EF-T5"] {
        assert!(
            row(code).detection.contains(&DetectionTechnique::CompletionTime),
            "{code} must be detectable by completion time"
        );
    }
    assert!(!row("EF-T2").applicable);
}

#[test]
fn figure2_behaviour_via_vm() {
    use jcc_core::vm::{compile, CallSpec, RunConfig, ThreadSpec, Value, Verdict, Vm};
    let component = examples::producer_consumer();
    let mut vm = Vm::new(
        compile(&component).unwrap(),
        vec![
            ThreadSpec {
                name: "consumer".into(),
                calls: (0..5).map(|_| CallSpec::new("receive", vec![])).collect(),
            },
            ThreadSpec {
                name: "producer".into(),
                calls: vec![CallSpec::new("send", vec![Value::Str("hello".into())])],
            },
        ],
    );
    let out = vm.run(&RunConfig::default());
    assert_eq!(out.verdict, Verdict::Completed);
    let received: String = out.results[0]
        .iter()
        .map(|r| match &r.returned {
            Some(jcc_core::vm::Value::Str(s)) => s.clone(),
            other => panic!("{other:?}"),
        })
        .collect();
    assert_eq!(received, "hello");
}

#[test]
fn figure3_arcs_regenerate() {
    let component = examples::producer_consumer();
    let graphs = build_component_cofgs(&component);
    assert_eq!(graphs.len(), 2);
    for g in &graphs {
        assert_eq!(g.arcs.len(), 5, "{} must have exactly 5 arcs", g.method);
        let kinds: Vec<NodeKind> = g.nodes.iter().map(|n| n.kind).collect();
        assert_eq!(
            kinds,
            vec![NodeKind::Start, NodeKind::Wait, NodeKind::NotifyAll, NodeKind::End]
        );
        let (matches, extra) = compare_with_figure3(g);
        assert_eq!(extra, 0);
        // Arcs 1, 2, 4, 5 match verbatim; arc 3 matches the systematic
        // derivation (the paper's printed sequence for it is anomalous).
        assert_eq!(
            matches,
            vec![
                ArcMatch::MatchesPrinted,
                ArcMatch::MatchesPrinted,
                ArcMatch::MatchesDerived,
                ArcMatch::MatchesPrinted,
                ArcMatch::MatchesPrinted,
            ]
        );
    }
    assert!(graphs[0].isomorphic(&graphs[1]), "send ≡ receive (Figure 3)");
}

#[test]
fn wait_forever_dead_state_under_side_condition() {
    // The paper's FF-T5 "only one thread … waits forever", at model level.
    let j = JavaNet::new(1);
    let g = ReachGraph::explore_filtered(
        j.net(),
        ReachLimits::default(),
        j.notify_side_condition(),
    );
    let dead = g.dead_states();
    assert_eq!(dead.len(), 1);
    assert!(j.all_threads_stuck(&g.markings()[dead[0]]));
}
