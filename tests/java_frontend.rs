//! Integration tests for the Java-subset frontend (`jcc-javasrc`):
//! per-construct lowering fixtures, the checked-in corpus contract
//! (expected CheckId at the expected source line), parse-error recovery,
//! and proptests that the frontend is total and deterministic.

use std::path::PathBuf;

use proptest::prelude::*;

use jcc_core::analyze::{CheckId, Severity};
use jcc_core::javasrc::check::{check_files, check_paths, CheckOptions, Format};
use jcc_core::javasrc::{lower_class, parse};
use jcc_core::model::ast::{LockRef, Stmt};
use jcc_core::model::pretty::print_component;

fn corpus(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/java_corpus").join(sub)
}

fn lower_one(src: &str) -> jcc_core::javasrc::Lowered {
    let (unit, diags) = parse(src);
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(unit.classes.len(), 1);
    lower_class(&unit.classes[0])
}

// ---------- per-construct positive/negative fixtures ----------

#[test]
fn synchronized_method_vs_synchronized_block() {
    // Same component, two spellings: the method modifier sets the flag,
    // the block form lowers to an explicit Synchronized statement.
    let modifier = lower_one(
        "class A { int n = 0; public synchronized void inc() { n = n + 1; } }",
    );
    let m = &modifier.component.methods[0];
    assert!(m.synchronized);
    assert!(matches!(m.body[0], Stmt::Assign { .. }));

    let block = lower_one(
        "class A { int n = 0; public void inc() { synchronized (this) { n = n + 1; } } }",
    );
    let m = &block.component.methods[0];
    assert!(!m.synchronized);
    match &m.body[0] {
        Stmt::Synchronized { lock, body } => {
            assert_eq!(lock, &LockRef::This);
            assert!(matches!(body[0], Stmt::Assign { .. }));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn wait_in_while_is_clean_wait_in_if_is_flagged() {
    let while_src = "class W { boolean ready = false; \
        public synchronized void go() { ready = true; notifyAll(); } \
        public synchronized void await() { while (!ready) { wait(); } } }";
    let if_src = "class W { boolean ready = false; \
        public synchronized void go() { ready = true; notifyAll(); } \
        public synchronized void await() { if (!ready) { wait(); } } }";

    let clean = jcc_core::analyze::analyze(&lower_one(while_src).component);
    assert!(
        !clean.diagnostics.iter().any(|d| d.check == CheckId::WaitNotInLoop),
        "{}",
        clean.render()
    );
    let flagged = jcc_core::analyze::analyze(&lower_one(if_src).component);
    let hit = flagged
        .diagnostics
        .iter()
        .find(|d| d.check == CheckId::WaitNotInLoop)
        .unwrap_or_else(|| panic!("{}", flagged.render()));
    assert_eq!(hit.severity, Severity::Medium);
}

#[test]
fn notify_vs_notify_all_lower_to_distinct_statements() {
    let l = lower_one(
        "class N { boolean a = false; \
         public synchronized void one() { a = true; notify(); } \
         public synchronized void all() { a = true; notifyAll(); } }",
    );
    assert!(matches!(
        l.component.method("one").unwrap().body[1],
        Stmt::Notify { lock: LockRef::This }
    ));
    assert!(matches!(
        l.component.method("all").unwrap().body[1],
        Stmt::NotifyAll { lock: LockRef::This }
    ));
}

#[test]
fn nested_synchronized_lowers_and_nested_wait_is_flagged() {
    let src = "class D { private final Object inner = new Object(); boolean go = false; \
        public synchronized void outer() { synchronized (inner) { while (!go) { inner.wait(); } } } \
        public void poke() { synchronized (inner) { go = true; inner.notifyAll(); } } }";
    let l = lower_one(src);
    match &l.component.method("outer").unwrap().body[0] {
        Stmt::Synchronized { lock, .. } => assert_eq!(lock, &LockRef::Named("inner".into())),
        other => panic!("{other:?}"),
    }
    let report = jcc_core::analyze::analyze(&l.component);
    assert!(
        report.diagnostics.iter().any(|d| d.check == CheckId::NestedMonitorWait),
        "{}",
        report.render()
    );
}

// ---------- corpus contract: CheckId at the expected source line ----------

/// Every seeded-buggy corpus file must produce its seeded check at the
/// line documented in the file header.
#[test]
fn buggy_corpus_hits_the_expected_check_at_the_expected_line() {
    let expected: &[(&str, CheckId, u32)] = &[
        ("WaitInIf.java", CheckId::WaitNotInLoop, 23),
        ("UnconditionalWait.java", CheckId::UnconditionalWait, 19),
        ("MissingNotify.java", CheckId::NoNotifierForWait, 19),
        ("LockOrderCycle.java", CheckId::LockOrderCycle, 8),
        ("RacyCounter.java", CheckId::UnlockedFieldAccess, 12),
        ("NestedMonitorWait.java", CheckId::NestedMonitorWait, 17),
        ("MonitorNotHeld.java", CheckId::MonitorNotHeld, 14),
    ];
    for (file, check, line) in expected {
        let path = corpus("buggy").join(file);
        let out = check_paths(&[path], &CheckOptions::default()).expect("read corpus file");
        assert_eq!(out.front_errors, 0, "{file}: {}", out.output);
        let hit = out.files[0]
            .reports
            .iter()
            .flat_map(|r| r.diagnostics.iter())
            .find(|d| d.check == *check)
            .unwrap_or_else(|| panic!("{file}: expected {check} in\n{}", out.files[0].output));
        let src = hit.src.as_ref().expect("attached source location");
        assert_eq!(src.line, *line, "{file}: {check} anchored at the wrong line");
    }
}

#[test]
fn clean_corpus_has_zero_high_findings_on_java_input() {
    let out = check_paths(&[corpus("clean")], &CheckOptions::default()).expect("read clean corpus");
    assert_eq!(out.front_errors, 0, "{}", out.output);
    assert_eq!(out.exit_code(), 0, "{}", out.output);
    assert_eq!(out.files.len(), 8);
}

#[test]
fn parse_error_recovers_and_still_flags_the_rest() {
    let out = check_paths(&[corpus("invalid")], &CheckOptions::default()).expect("read invalid corpus");
    assert_eq!(out.exit_code(), 2);
    assert!(out.output.contains("error[parse]"), "{}", out.output);
    // Recovery: the class after the syntax error still parsed, lowered,
    // and analyzed (take()'s guard assignment is the benign Medium).
    let report = &out.files[0].reports[0];
    assert_eq!(report.component, "SyntaxError");
    assert!(!report.diagnostics.is_empty(), "{}", out.output);
}

// ---------- determinism and totality (proptest) ----------

/// Build a small Java-ish source from indexed fragment pools. Many are
/// valid subset programs, some are malformed — both are good inputs for
/// the totality property.
fn source_from(seed: &[usize]) -> String {
    const GUARDS: &[&str] = &["!ready", "count > 0", "count == 0", "ready"];
    const STMTS: &[&str] = &[
        "wait();",
        "notify();",
        "notifyAll();",
        "count = count + 1;",
        "count--;",
        "ready = true;",
        "int x = count; count = x;",
        "helper();",
        "return;",
        "synchronized (this) { count = 0; }",
        ";",
        "count = ;", // malformed on purpose: recovery path
        "this.count = 1;",
    ];
    let mut body = String::new();
    for (i, &s) in seed.iter().enumerate() {
        match s % 4 {
            0 => body.push_str(&format!(
                "while ({}) {{ {} }}\n",
                GUARDS[s % GUARDS.len()],
                STMTS[(s / 4) % STMTS.len()]
            )),
            1 => body.push_str(&format!(
                "if ({}) {{ {} }} else {{ {} }}\n",
                GUARDS[s % GUARDS.len()],
                STMTS[(s / 4) % STMTS.len()],
                STMTS[(s / 5) % STMTS.len()]
            )),
            _ => body.push_str(&format!("{}\n", STMTS[(s + i) % STMTS.len()])),
        }
    }
    format!(
        "class G {{\n  private int count = 0;\n  private boolean ready = false;\n\
         \n  public synchronized void m() {{\n{body}  }}\n\
         \n  public synchronized void n() {{\n    ready = false;\n    notifyAll();\n  }}\n}}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Totality: whatever the fragments compose to, the full check
    /// pipeline neither panics nor exits outside the 0/1/2 contract.
    #[test]
    fn frontend_is_total_over_fragment_soup(
        seed in proptest::collection::vec(0usize..1000, 0..12),
    ) {
        let src = source_from(&seed);
        for format in [Format::Text, Format::Json] {
            let opts = CheckOptions { format, ..CheckOptions::default() };
            let out = check_files(&[("G.java".into(), src.clone())], &opts);
            prop_assert!((0..=2).contains(&out.exit_code()));
        }
    }

    /// Determinism: lowering the same source twice produces structurally
    /// identical MIR (same pretty-print) and byte-identical check output.
    #[test]
    fn lowering_is_deterministic(
        seed in proptest::collection::vec(0usize..1000, 0..12),
    ) {
        let src = source_from(&seed);
        let (unit_a, diags_a) = parse(&src);
        let (unit_b, diags_b) = parse(&src);
        prop_assert_eq!(&diags_a, &diags_b);
        prop_assert_eq!(unit_a.classes.len(), unit_b.classes.len());
        for (a, b) in unit_a.classes.iter().zip(unit_b.classes.iter()) {
            let la = lower_class(a);
            let lb = lower_class(b);
            prop_assert_eq!(print_component(&la.component), print_component(&lb.component));
            prop_assert_eq!(&la.diags, &lb.diags);
        }
        let opts = CheckOptions::default();
        let out_a = check_files(&[("G.java".into(), src.clone())], &opts);
        let out_b = check_files(&[("G.java".into(), src)], &opts);
        prop_assert_eq!(out_a.output, out_b.output);
    }

    /// Raw-bytes totality: even arbitrary non-Java text must only ever
    /// produce a clean exit-2 report, never a panic.
    #[test]
    fn frontend_survives_arbitrary_text(
        bytes in proptest::collection::vec(0u8..128, 0..200),
    ) {
        let src: String = bytes.iter().map(|&b| b as char).collect();
        let out = check_files(
            &[("X.java".into(), src)],
            &CheckOptions::default(),
        );
        prop_assert!((0..=2).contains(&out.exit_code()));
    }
}
