package jcc.corpus.clean;

/**
 * A single-use countdown barrier: arrivers decrement and wait until the
 * count reaches zero; the last arrival wakes everyone.
 */
public class Barrier {
    private int remaining = 3;

    public synchronized void arrive() {
        remaining = remaining - 1;
        if (remaining == 0) {
            notifyAll();
        }
        while (remaining > 0) {
            wait();
        }
    }

    public synchronized int pending() {
        return remaining;
    }
}
