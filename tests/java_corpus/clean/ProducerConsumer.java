package jcc.corpus.clean;

/**
 * The textbook one-slot producer/consumer cell: guarded waits in while
 * loops, notifyAll after every state change. Clean under every check.
 */
public class ProducerConsumer {
    private int value = 0;
    private boolean full = false;

    public synchronized void produce(int v) {
        while (full) {
            wait();
        }
        value = v;
        full = true;
        notifyAll();
    }

    public synchronized int consume() {
        while (!full) {
            wait();
        }
        full = false;
        notifyAll();
        return value;
    }
}
