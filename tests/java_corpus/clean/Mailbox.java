package jcc.corpus.clean;

/**
 * A one-message mailbox synchronized on a private lock object instead of
 * `this`: exercises `Object lock = new Object()` declarations,
 * `synchronized (lock)` blocks, and `lock.wait()` / `lock.notifyAll()`.
 */
public class Mailbox {
    private final Object lock = new Object();
    private String message = "";
    private boolean present = false;

    public void deliver(String m) {
        synchronized (lock) {
            while (present) {
                lock.wait();
            }
            message = m;
            present = true;
            lock.notifyAll();
        }
    }

    public String collect() {
        synchronized (lock) {
            while (!present) {
                lock.wait();
            }
            present = false;
            lock.notifyAll();
            return message;
        }
    }
}
