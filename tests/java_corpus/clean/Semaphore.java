package jcc.corpus.clean;

/**
 * A counting semaphore. acquire() consumes a permit without notifying —
 * correct for a semaphore, and the analyzer's documented benign Medium
 * (missed-notification is heuristic); no High diagnostic fires.
 */
public class Semaphore {
    private int permits = 2;

    public synchronized void acquire() {
        while (permits == 0) {
            wait();
        }
        permits = permits - 1;
    }

    public synchronized void release() {
        permits = permits + 1;
        notifyAll();
    }
}
