package jcc.corpus.clean;

/**
 * Readers-writers with writer preference: readers wait while a writer is
 * active, writers wait for exclusive access. Every exit notifies all.
 */
public class ReadersWriters {
    private int readers = 0;
    private boolean writing = false;

    public synchronized void beginRead() {
        while (writing) {
            wait();
        }
        readers = readers + 1;
    }

    public synchronized void endRead() {
        readers = readers - 1;
        if (readers == 0) {
            notifyAll();
        }
    }

    public synchronized void beginWrite() {
        while (writing || readers > 0) {
            wait();
        }
        writing = true;
    }

    public synchronized void endWrite() {
        writing = false;
        notifyAll();
    }
}
