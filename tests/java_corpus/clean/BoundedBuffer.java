package jcc.corpus.clean;

/**
 * A counting bounded buffer: capacity-guarded put, emptiness-guarded
 * take, notifyAll on both transitions.
 */
public class BoundedBuffer {
    private int count = 0;
    private int capacity = 4;

    public synchronized void put() {
        while (count >= capacity) {
            wait();
        }
        count = count + 1;
        notifyAll();
    }

    public synchronized void take() {
        while (count == 0) {
            wait();
        }
        count = count - 1;
        notifyAll();
    }

    public synchronized int size() {
        return count;
    }
}
