package jcc.corpus.clean;

/**
 * A write-once future: get() blocks until set() delivers the value.
 * Second set() calls are ignored rather than erroneous.
 */
public class FutureCell {
    private int value = 0;
    private boolean done = false;

    public synchronized void set(int v) {
        if (!done) {
            value = v;
            done = true;
            notifyAll();
        }
    }

    public synchronized int get() {
        while (!done) {
            wait();
        }
        return value;
    }

    public synchronized boolean isDone() {
        return done;
    }
}
