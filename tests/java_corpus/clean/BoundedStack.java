package jcc.corpus.clean;

/**
 * A blocking stack tracked by depth only: push waits below capacity,
 * pop waits for a non-empty stack. Compound assignments exercise the
 * frontend's ++/-- desugaring.
 */
public class BoundedStack {
    private int depth = 0;
    private int limit = 8;

    public synchronized void push() {
        while (depth >= limit) {
            wait();
        }
        depth++;
        notifyAll();
    }

    public synchronized void pop() {
        while (depth == 0) {
            wait();
        }
        depth--;
        notifyAll();
    }
}
