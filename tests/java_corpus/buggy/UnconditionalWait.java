package jcc.corpus.buggy;

/**
 * Seeded defect: take() waits under no conditional at all — the thread
 * suspends even when a value is already available.
 * Expected: unconditional-wait (EF-T3, high) at the wait() call.
 */
public class UnconditionalWait {
    private int value = 0;
    private boolean full = false;

    public synchronized void put(int v) {
        value = v;
        full = true;
        notifyAll();
    }

    public synchronized int take() {
        wait();
        full = false;
        return value;
    }
}
