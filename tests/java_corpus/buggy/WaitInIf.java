package jcc.corpus.buggy;

/**
 * Seeded defect: the consumer re-checks its guard with `if` instead of
 * `while`, so a spurious or stolen wake-up proceeds on a stale guard.
 * Expected: wait-not-in-loop (EF-T5, medium) at the wait() call.
 */
public class WaitInIf {
    private boolean full = false;
    private int value = 0;

    public synchronized void produce(int v) {
        while (full) {
            wait();
        }
        value = v;
        full = true;
        notifyAll();
    }

    public synchronized int consume() {
        if (!full) {
            wait();
        }
        full = false;
        notifyAll();
        return value;
    }
}
