package jcc.corpus.buggy;

/**
 * Seeded defect: transfer() locks a then b, audit() locks b then a —
 * the classic circular-wait deadlock.
 * Expected: lock-order-cycle (FF-T2, high).
 */
public class LockOrderCycle {
    private final Object a = new Object();
    private final Object b = new Object();
    private int balanceA = 100;
    private int balanceB = 100;

    public void transfer(int amount) {
        synchronized (a) {
            synchronized (b) {
                balanceA = balanceA - amount;
                balanceB = balanceB + amount;
            }
        }
    }

    public int audit() {
        synchronized (b) {
            synchronized (a) {
                return balanceA + balanceB;
            }
        }
    }
}
