package jcc.corpus.buggy;

/**
 * Seeded defect: put() sets the guard but no method in the class ever
 * notifies the monitor, so a blocked take() sleeps forever.
 * Expected: no-notifier-for-wait (FF-T5, high) at the wait() call.
 */
public class MissingNotify {
    private int value = 0;
    private boolean full = false;

    public synchronized void put(int v) {
        value = v;
        full = true;
    }

    public synchronized int take() {
        while (!full) {
            wait();
        }
        full = false;
        return value;
    }
}
