package jcc.corpus.buggy;

/**
 * Seeded defect: increment() writes the counter without the lock that
 * protects it everywhere else — lost-update interference.
 * Expected: unlocked-field-access (FF-T1, high) at the unlocked write.
 */
public class RacyCounter {
    private int count = 0;

    public void increment() {
        count = count + 1;
    }

    public synchronized void reset() {
        count = 0;
    }

    public synchronized int get() {
        return count;
    }
}
