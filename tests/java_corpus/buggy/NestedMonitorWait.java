package jcc.corpus.buggy;

/**
 * Seeded defect: take() waits on the inner lock while still holding the
 * outer monitor — wait() only releases the inner lock, so put() can
 * never enter to deliver: the nested-monitor lockout.
 * Expected: nested-monitor-wait (FF-T2, high) at the lock.wait() call.
 */
public class NestedMonitorWait {
    private final Object lock = new Object();
    private boolean full = false;
    private int value = 0;

    public synchronized int take() {
        synchronized (lock) {
            while (!full) {
                lock.wait();
            }
            full = false;
            return value;
        }
    }

    public synchronized void put(int v) {
        synchronized (lock) {
            value = v;
            full = true;
            lock.notifyAll();
        }
    }
}
