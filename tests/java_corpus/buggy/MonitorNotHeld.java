package jcc.corpus.buggy;

/**
 * Seeded defect: signal() notifies without holding the monitor — at run
 * time this is an IllegalMonitorStateException, so the notification is
 * never delivered.
 * Expected: monitor-not-held (FF-T1, high) at the notifyAll() call.
 */
public class MonitorNotHeld {
    private boolean ready = false;

    public void signal() {
        ready = true;
        notifyAll();
    }

    public synchronized void await() {
        while (!ready) {
            wait();
        }
    }
}
