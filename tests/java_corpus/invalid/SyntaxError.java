package jcc.corpus.invalid;

/**
 * Deliberately malformed: the first assignment in put() is missing its
 * right-hand side. The parser must report it, synchronize on the `;`,
 * and still parse and analyze the rest of the class — the recovery
 * fixture for exit code 2.
 */
public class SyntaxError {
    private int value = 0;
    private boolean full = false;

    public synchronized void put(int v) {
        value = ;
        full = true;
        notifyAll();
    }

    public synchronized int take() {
        while (!full) {
            wait();
        }
        full = false;
        return value;
    }
}
