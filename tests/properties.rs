//! Cross-crate property-based tests (proptest).

use proptest::prelude::*;

use jcc_core::detect::lockset::LocksetAnalyzer;
use jcc_core::detect::normalize::{MonEvent, MonEventKind};
use jcc_core::model::ast::{BinOp, Expr, UnOp};
use jcc_core::model::mutate::all_mutants;
use jcc_core::model::pretty::{print_component, print_expr};
use jcc_core::model::{examples, parse_component};
use jcc_core::petri::{invariant, JavaNet, NetBuilder, Parallelism, ReachGraph, ReachLimits};
use jcc_core::vm::{compile, CallSpec, RunConfig, Scheduler, ThreadSpec, Value, Vm};

// ---------- petri: invariants hold along random firing sequences ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn petri_invariants_hold_under_random_firing(
        threads in 1usize..4,
        choices in proptest::collection::vec(0usize..64, 1..60),
    ) {
        let j = JavaNet::new(threads);
        let net = j.net();
        let basis = invariant::invariant_basis(net);
        let mut marking = net.initial_marking();
        let initial: Vec<i64> = basis
            .iter()
            .map(|b| invariant::weighted_sum(&marking, b))
            .collect();
        for c in choices {
            let enabled = net.enabled_transitions(&marking);
            if enabled.is_empty() {
                break;
            }
            let t = enabled[c % enabled.len()];
            marking = net.fire(&marking, t).unwrap();
            let sums: Vec<i64> = basis
                .iter()
                .map(|b| invariant::weighted_sum(&marking, b))
                .collect();
            prop_assert_eq!(&sums, &initial);
            // Safety: 1-bounded along the way.
            prop_assert!(marking.0.iter().all(|&t| t <= 1));
        }
    }
}

// ---------- petri: parallel reachability agrees with sequential ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary small nets, the parallel frontier explores exactly
    /// the marking set of the sequential BFS — same states in the same
    /// canonical order, same edges, same boundedness and dead-state
    /// verdicts. (Unbounded nets hit the token bound; the parallel engine
    /// then falls back to the sequential prefix, so they still agree.)
    #[test]
    fn parallel_reachability_explores_same_markings_as_sequential(
        places in proptest::collection::vec(0u32..3, 1..5),
        transitions in proptest::collection::vec(
            (proptest::collection::vec(0usize..16, 0..3),
             proptest::collection::vec(0usize..16, 0..3)),
            1..6,
        ),
        threads in 2usize..5,
    ) {
        let mut b = NetBuilder::new();
        let ids: Vec<_> = places
            .iter()
            .enumerate()
            .map(|(i, &tokens)| b.place(format!("p{i}"), tokens))
            .collect();
        for (i, (ins, outs)) in transitions.iter().enumerate() {
            // Map free-range indices onto real places; dedupe so arc
            // weights stay unit.
            let mut ins: Vec<_> = ins.iter().map(|&x| ids[x % ids.len()]).collect();
            ins.sort();
            ins.dedup();
            let mut outs: Vec<_> = outs.iter().map(|&x| ids[x % ids.len()]).collect();
            outs.sort();
            outs.dedup();
            b.transition(format!("t{i}"), &ins, &outs);
        }
        let net = b.build().unwrap();
        let limits = ReachLimits {
            max_states: 3_000,
            max_tokens_per_place: 8,
            parallelism: Parallelism::sequential(),
            ..ReachLimits::default()
        };
        let seq = ReachGraph::explore(&net, limits);
        let par = ReachGraph::explore(
            &net,
            ReachLimits {
                parallelism: Parallelism::with_threads(threads),
                ..limits
            },
        );
        prop_assert_eq!(par.stats(), seq.stats());
        prop_assert_eq!(par.markings(), seq.markings());
        for i in 0..seq.markings().len() {
            prop_assert_eq!(par.successors(i), seq.successors(i));
        }
        prop_assert_eq!(par.dead_states(), seq.dead_states());
        for bound in [1u32, 2, 4] {
            prop_assert_eq!(par.is_k_bounded(bound), seq.is_k_bounded(bound));
        }
    }
}

// ---------- model: pretty-printer round-trips ----------

/// Typed random expressions: integer-valued.
fn arb_int_expr(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        (0i64..1000).prop_map(Expr::Int).boxed()
    } else {
        let sub = arb_int_expr(depth - 1);
        prop_oneof![
            (0i64..1000).prop_map(Expr::Int),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Binary(
                BinOp::Add,
                Box::new(a),
                Box::new(b)
            )),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Binary(
                BinOp::Mul,
                Box::new(a),
                Box::new(b)
            )),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Binary(
                BinOp::Sub,
                Box::new(a),
                Box::new(b)
            )),
            sub.clone().prop_map(|a| Expr::Unary(UnOp::Neg, Box::new(a))),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn printed_expressions_reparse_identically(expr in arb_int_expr(3)) {
        let src = format!(
            "class P {{ fn m() -> int {{ return {}; }} }}",
            print_expr(&expr)
        );
        let component = parse_component(&src).unwrap();
        match &component.methods[0].body[0] {
            jcc_core::model::Stmt::Return(Some(parsed)) => {
                prop_assert_eq!(parsed, &expr);
            }
            other => prop_assert!(false, "unexpected statement {:?}", other),
        }
    }
}

#[test]
fn every_corpus_mutant_roundtrips_through_the_printer() {
    for (name, component) in examples::corpus() {
        let printed = print_component(&component);
        let reparsed = parse_component(&printed)
            .unwrap_or_else(|e| panic!("{name} failed reparse: {e}\n{printed}"));
        assert_eq!(component, reparsed, "{name}");
        for (mutation, mutant) in all_mutants(&component) {
            // DropSynchronized mutants are printable but place wait/notify
            // outside synchronized context — still must round-trip.
            let printed = print_component(&mutant);
            let reparsed = parse_component(&printed).unwrap_or_else(|e| {
                panic!("{name}/{} failed reparse: {e}\n{printed}", mutation.label())
            });
            assert_eq!(mutant, reparsed, "{name}/{}", mutation.label());
        }
    }
}

// ---------- components: the generator is valid by construction ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any sized generator config yields a component that validates,
    /// compiles, survives the printer round-trip, and explores to the
    /// *same* census sequentially and under the portfolio at 1, 2 and 4
    /// workers — with a deadlock-free call plan, for any seed.
    #[test]
    fn generated_components_roundtrip_and_explore_deterministically(
        n in 1usize..=2,
        seed in 0u64..1000,
    ) {
        use jcc_core::components::gen::{call_plan, generate, generate_source, GenConfig};
        use jcc_core::vm::{explore, explore_portfolio, ExploreConfig, PortfolioConfig};

        let cfg = GenConfig::sized(n, seed);
        prop_assert_eq!(generate_source(&cfg), generate_source(&cfg));
        let component = generate(&cfg); // panics unless it parses + validates
        let printed = print_component(&component);
        let reparsed = parse_component(&printed).unwrap();
        prop_assert_eq!(&component, &reparsed);

        let compiled = compile(&component).unwrap();
        let make_vm = || {
            Vm::new(
                compiled.clone(),
                call_plan(&cfg)
                    .into_iter()
                    .enumerate()
                    .map(|(i, calls)| ThreadSpec {
                        name: format!("t{i}"),
                        calls: calls.into_iter().map(|m| CallSpec::new(m, vec![])).collect(),
                    })
                    .collect(),
            )
        };
        let reference = explore(make_vm(), &ExploreConfig::default(), None);
        prop_assert!(!reference.truncated);
        prop_assert!(reference.completed_paths > 0);
        prop_assert_eq!(reference.deadlock_paths, 0, "call plan must be deadlock-free");
        for threads in [1usize, 2, 4] {
            let p = explore_portfolio(
                make_vm(),
                &PortfolioConfig {
                    explore: ExploreConfig {
                        parallelism: Parallelism::with_threads(threads),
                        ..ExploreConfig::default()
                    },
                    ..PortfolioConfig::default()
                },
            );
            let census = p.result.expect("census completes without early_exit");
            prop_assert_eq!(census.tally(), reference.tally(), "threads={}", threads);
        }
    }
}

// ---------- vm: determinism and coverage monotonicity ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn vm_runs_are_deterministic_per_seed(seed in 0u64..1000) {
        let component = examples::producer_consumer();
        let compiled = compile(&component).unwrap();
        let threads = vec![
            ThreadSpec {
                name: "c".into(),
                calls: vec![
                    CallSpec::new("receive", vec![]),
                    CallSpec::new("receive", vec![]),
                ],
            },
            ThreadSpec {
                name: "p".into(),
                calls: vec![CallSpec::new("send", vec![Value::Str("xy".into())])],
            },
        ];
        let cfg = RunConfig {
            scheduler: Scheduler::Random(seed),
            max_steps: 20_000,
        };
        let out1 = Vm::new(compiled.clone(), threads.clone()).run(&cfg);
        let out2 = Vm::new(compiled, threads).run(&cfg);
        prop_assert_eq!(out1.trace, out2.trace);
        prop_assert_eq!(out1.verdict, out2.verdict);
    }

    #[test]
    fn coverage_is_monotone_in_trace_prefix(seed in 0u64..200) {
        use jcc_core::cofg::{build_component_cofgs, CoverageTracker};
        use jcc_core::vm::trace::apply_trace;
        let component = examples::producer_consumer();
        let compiled = compile(&component).unwrap();
        let mut vm = Vm::new(
            compiled,
            vec![
                ThreadSpec {
                    name: "c".into(),
                    calls: vec![CallSpec::new("receive", vec![])],
                },
                ThreadSpec {
                    name: "p".into(),
                    calls: vec![CallSpec::new("send", vec![Value::Str("q".into())])],
                },
            ],
        );
        let out = vm.run(&RunConfig {
            scheduler: Scheduler::Random(seed),
            max_steps: 20_000,
        });
        let mut last = 0;
        for cut in 0..=out.trace.len() {
            let mut tracker = CoverageTracker::new(build_component_cofgs(&component));
            apply_trace(&out.trace[..cut], &mut tracker);
            let covered = tracker.covered_arcs();
            prop_assert!(covered >= last, "coverage regressed at prefix {}", cut);
            last = covered;
        }
    }
}

// ---------- detect: lockset never flags consistent locking ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lockset_is_quiet_for_consistently_locked_traces(
        ops in proptest::collection::vec((1u64..5, 0usize..4, proptest::bool::ANY), 1..80),
    ) {
        // Every access to variable v_i is protected by lock i.
        let mut events = Vec::new();
        for (thread, var, is_write) in ops {
            let lock = var as u64 + 10;
            events.push(MonEvent { thread, kind: MonEventKind::Acquire(lock) });
            let name = format!("v{var}");
            events.push(MonEvent {
                thread,
                kind: if is_write {
                    MonEventKind::Write(name)
                } else {
                    MonEventKind::Read(name)
                },
            });
            events.push(MonEvent { thread, kind: MonEventKind::Release(lock) });
        }
        prop_assert!(LocksetAnalyzer::analyze(&events).is_empty());
    }
}
