//! Parallel determinism: every parallel engine must produce results
//! *identical* to its sequential counterpart — same ReachGraph, same
//! exploration tallies, same mutation detection matrix — for any worker
//! count and across repeated runs. Scheduling may vary; results may not.
//!
//! (See DESIGN.md §4: parallel reachability renumbers canonically, the
//! portfolio keeps the exhaustive DFS on one worker, and the mutation
//! study fans independent matrix rows reassembled positionally.)

use jcc_core::components::zoo::full_corpus;
use jcc_core::model::examples;
use jcc_core::petri::{JavaNet, Parallelism, ReachGraph, ReachLimits};
use jcc_core::pipeline::{mutation_study, MutationStudyConfig, MutationStudyResult};
use jcc_core::testgen::corpus::space_for;
use jcc_core::testgen::scenario::ScenarioSpace;
use jcc_core::vm::{
    compile, explore, explore_portfolio, CallSpec, ExploreConfig, PortfolioConfig, ThreadSpec,
    Value, Vm,
};

fn limits(threads: usize) -> ReachLimits {
    ReachLimits {
        parallelism: Parallelism::with_threads(threads),
        ..ReachLimits::default()
    }
}

/// Everything observable about a reach graph, in canonical order.
type GraphFingerprint = (Vec<Vec<u32>>, Vec<Vec<(usize, usize)>>, Vec<usize>);

fn graph_fingerprint(g: &ReachGraph) -> GraphFingerprint {
    let markings = g
        .markings()
        .iter()
        .map(|m| m.0.to_vec())
        .collect::<Vec<_>>();
    let successors = (0..g.markings().len())
        .map(|i| {
            g.successors(i)
                .iter()
                .map(|(t, j)| (t.index(), *j))
                .collect::<Vec<_>>()
        })
        .collect::<Vec<_>>();
    (markings, successors, g.dead_states())
}

#[test]
fn reach_graph_identical_across_thread_counts_and_runs() {
    for n in 1..=3 {
        let j = JavaNet::new(n);
        let reference = ReachGraph::explore(j.net(), limits(1));
        let reference_fp = graph_fingerprint(&reference);
        for threads in [2usize, 3, 8] {
            for run in 0..3 {
                let g = ReachGraph::explore(j.net(), limits(threads));
                assert_eq!(g.stats(), reference.stats(), "n={n} threads={threads}");
                assert_eq!(
                    graph_fingerprint(&g),
                    reference_fp,
                    "n={n} threads={threads} run={run}"
                );
            }
        }
    }
}

#[test]
fn filtered_reach_graph_identical_across_thread_counts() {
    for n in 1..=3 {
        let j = JavaNet::new(n);
        let reference =
            ReachGraph::explore_filtered(j.net(), limits(1), j.notify_side_condition());
        for threads in [2usize, 4] {
            let g =
                ReachGraph::explore_filtered(j.net(), limits(threads), j.notify_side_condition());
            assert_eq!(
                graph_fingerprint(&g),
                graph_fingerprint(&reference),
                "n={n} threads={threads}"
            );
            assert_eq!(g.is_k_bounded(1), reference.is_k_bounded(1));
        }
    }
}

/// The adaptive batch policy must leave work visible to thieves: on a
/// frontier large enough to occupy four workers (JavaNet(8): ~24k
/// states), at least one steal happens. The moment of a steal is
/// scheduling-dependent, so retry a few times before declaring the steal
/// path starved — the determinism of the *result* is covered by the
/// fingerprint tests above, this one guards the fix for the old fixed
/// 8/4 batches draining whole queues before anyone else saw work.
#[test]
fn adaptive_batching_lets_workers_steal() {
    use jcc_core::obs;
    let j = JavaNet::new(8);
    let mut steals = 0u64;
    for _attempt in 0..3 {
        obs::set_level(obs::ObsLevel::Summary);
        obs::global().reset();
        let g = ReachGraph::explore(j.net(), limits(4));
        steals = obs::global().counter("petri.reach.steals").get();
        obs::set_level(obs::ObsLevel::Off);
        assert!(g.stats().truncated.is_none());
        if steals > 0 {
            break;
        }
    }
    assert!(
        steals > 0,
        "no steals in 3 runs — adaptive batching is starving the steal path"
    );
}

fn pc_vm() -> Vm {
    let c = examples::producer_consumer();
    Vm::new(
        compile(&c).unwrap(),
        vec![
            ThreadSpec {
                name: "c".into(),
                calls: vec![CallSpec::new("receive", vec![])],
            },
            ThreadSpec {
                name: "p".into(),
                calls: vec![CallSpec::new("send", vec![Value::Str("ab".into())])],
            },
        ],
    )
}

#[test]
fn portfolio_census_identical_across_thread_counts_and_runs() {
    let reference = explore(pc_vm(), &ExploreConfig::default(), None);
    for threads in [1usize, 2, 4] {
        for run in 0..3 {
            let p = explore_portfolio(
                pc_vm(),
                &PortfolioConfig {
                    explore: ExploreConfig {
                        parallelism: Parallelism::with_threads(threads),
                        ..ExploreConfig::default()
                    },
                    ..PortfolioConfig::default()
                },
            );
            let census = p.result.expect("census completes without early_exit");
            assert_eq!(
                census.tally(),
                reference.tally(),
                "threads={threads} run={run}"
            );
        }
    }
}

/// Every component of the full corpus (seed monitors and zoo): the
/// portfolio census equals sequential exploration at any worker count
/// (including scenarios that deadlock or leave waiters — their path
/// counts must agree too). One thread per session template from the
/// canonical scenario registry.
#[test]
fn portfolio_census_identical_for_every_corpus_component() {
    for (name, component) in full_corpus() {
        let compiled = compile(&component).unwrap();
        let space = space_for(name).expect("corpus component is registered");
        let make_vm = || {
            Vm::new(
                compiled.clone(),
                space
                    .templates
                    .iter()
                    .enumerate()
                    .map(|(i, session)| ThreadSpec {
                        name: format!("t{i}"),
                        calls: session.clone(),
                    })
                    .collect(),
            )
        };
        let reference = explore(make_vm(), &ExploreConfig::default(), None);
        for threads in [2usize, 4] {
            let p = explore_portfolio(
                make_vm(),
                &PortfolioConfig {
                    explore: ExploreConfig {
                        parallelism: Parallelism::with_threads(threads),
                        ..ExploreConfig::default()
                    },
                    ..PortfolioConfig::default()
                },
            );
            let census = p.result.expect("census completes without early_exit");
            assert_eq!(
                census.tally(),
                reference.tally(),
                "{name} threads={threads}"
            );
        }
    }
}

fn study_config(threads: usize) -> MutationStudyConfig {
    MutationStudyConfig {
        parallelism: Parallelism::with_threads(threads),
        ..MutationStudyConfig::default()
    }
}

/// The full detection matrix, labelled, in mutant-enumeration order.
fn detection_matrix(r: &MutationStudyResult) -> Vec<(String, bool, bool)> {
    r.mutants
        .iter()
        .map(|m| (m.mutation.label(), m.detected_directed, m.detected_random))
        .collect()
}

#[test]
fn mutation_matrix_identical_across_thread_counts_and_runs() {
    let c = examples::producer_consumer();
    let space = ScenarioSpace::new(vec![
        CallSpec::new("receive", vec![]),
        CallSpec::new("send", vec![Value::Str("a".into())]),
    ]);
    let reference = mutation_study(&c, &space, &study_config(1));
    let reference_matrix = detection_matrix(&reference);
    for threads in [2usize, 4] {
        for run in 0..2 {
            let r = mutation_study(&c, &space, &study_config(threads));
            assert_eq!(
                detection_matrix(&r),
                reference_matrix,
                "threads={threads} run={run}"
            );
            assert_eq!(r.directed_suite_size, reference.directed_suite_size);
            assert_eq!(r.random_suite_size, reference.random_suite_size);
            assert_eq!(r.directed_coverage, reference.directed_coverage);
            assert_eq!(r.random_coverage, reference.random_coverage);
        }
    }
}

/// One component's mutation-study matrix, checked at the given worker
/// counts against the sequential reference. Scenario spaces come from the
/// canonical registry (`jcc_core::testgen::corpus`).
fn assert_matrix_stable(name: &str, threads: &[usize]) {
    let component = full_corpus()
        .into_iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("{name} not in the corpus"))
        .1;
    let space = space_for(name).expect("corpus component is registered");
    let expected_mutants = jcc_core::model::mutate::all_mutants(&component).len();
    let reference = mutation_study(&component, &space, &study_config(1));
    assert_eq!(
        reference.mutants.len(),
        expected_mutants,
        "{name}: sequential study lost mutants"
    );
    let reference_matrix = detection_matrix(&reference);
    for &threads in threads {
        let r = mutation_study(&component, &space, &study_config(threads));
        assert_eq!(
            r.mutants.len(),
            expected_mutants,
            "{name} threads={threads}: lost mutants"
        );
        assert_eq!(
            detection_matrix(&r),
            reference_matrix,
            "{name} threads={threads}: matrix diverged"
        );
    }
}

/// CI-run, size-capped slice of the corpus stress test: two cheap
/// components — one seed monitor and one zoo entry — through the full
/// parallel mutation study at 2 and 4 workers, so the determinism
/// guarantee is exercised on every PR rather than only behind
/// `--ignored`. The exhaustive sweep over all thirteen components and
/// worker counts 2–8 stays in the ignored stress test below.
#[test]
fn capped_corpus_mutation_study_matrix_stable_at_two_and_four_workers() {
    for name in ["BoundedBuffer", "FutureCell"] {
        assert_matrix_stable(name, &[2, 4]);
    }
}

/// Stress: the parallel mutation study over the full corpus (seed
/// monitors and zoo) at every worker count from 2 to 8 — no panics, no
/// lost mutants, matrices all equal to the sequential run. Deliberately
/// timing-free (a single-core runner must pass it too). Run with
/// `cargo test -- --ignored`.
#[test]
#[ignore = "slow: full corpus x 7 thread counts"]
fn stress_corpus_mutation_study_at_many_thread_counts() {
    let threads: Vec<usize> = (2..=8).collect();
    for (name, _) in full_corpus() {
        assert_matrix_stable(name, &threads);
    }
}
