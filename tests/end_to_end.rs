//! Integration: the full pipeline — parse → validate → compile → CoFG →
//! directed suite → execution → classification — over the whole corpus.

use jcc_core::model::examples;
use jcc_core::pipeline::Pipeline;
use jcc_core::testgen::scenario::ScenarioSpace;
use jcc_core::testgen::suite::GreedyConfig;
use jcc_core::vm::{CallSpec, Scheduler, Value};

fn space_for(name: &str) -> ScenarioSpace {
    match name {
        "ProducerConsumer" => ScenarioSpace::new(vec![
            CallSpec::new("receive", vec![]),
            CallSpec::new("send", vec![Value::Str("a".into())]),
            CallSpec::new("send", vec![Value::Str("ab".into())]),
        ]),
        "BoundedBuffer" => ScenarioSpace::new(vec![
            CallSpec::new("put", vec![Value::Int(1)]),
            CallSpec::new("put", vec![Value::Int(2)]),
            CallSpec::new("take", vec![]),
        ]),
        "Semaphore" => ScenarioSpace::new(vec![
            CallSpec::new("init", vec![Value::Int(1)]),
            CallSpec::new("acquire", vec![]),
            CallSpec::new("release", vec![]),
        ]),
        "ReadersWriters" => ScenarioSpace::of_sessions(vec![
            vec![
                CallSpec::new("startRead", vec![]),
                CallSpec::new("endRead", vec![]),
            ],
            vec![
                CallSpec::new("startWrite", vec![]),
                CallSpec::new("endWrite", vec![]),
            ],
        ]),
        "Barrier" => ScenarioSpace::new(vec![
            CallSpec::new("init", vec![Value::Int(2)]),
            CallSpec::new("await", vec![]),
        ]),
        other => panic!("no scenario space for {other}"),
    }
}

#[test]
fn every_corpus_component_flows_through_the_pipeline() {
    for (name, component) in examples::corpus() {
        let pipeline = Pipeline::new(component).unwrap_or_else(|e| {
            panic!("{name} failed validation: {e:?}");
        });
        assert!(pipeline.total_arcs() >= 3, "{name} has too few arcs");
        let suite = pipeline.directed_suite(&space_for(name), &GreedyConfig::default());
        assert!(
            suite.coverage_ratio() > 0.7,
            "{name}: directed suite covered only {:.0}% — uncovered: {:?}",
            suite.coverage_ratio() * 100.0,
            suite.coverage.uncovered()
        );
        // Running any selected scenario classifies cleanly or reports a
        // legitimate suspension (some scenarios deliberately leave waiters).
        for scenario in suite.scenarios.iter().take(3) {
            let (_outcome, findings) =
                pipeline.run_and_classify(scenario, Scheduler::RoundRobin);
            for f in &findings {
                // A correct component can only ever show FF-T5/FF-T2-style
                // "left waiting" outcomes from deliberately unbalanced
                // scenarios, never faults or retained locks.
                assert_ne!(
                    f.class.code(),
                    "FF-T1",
                    "{name} misclassified as racy: {f}"
                );
            }
        }
    }
}

#[test]
fn directed_suites_cover_all_feasible_arcs() {
    // Full arc coverage is expected for four of the five corpus components.
    // The Barrier is the instructive exception: two of its CoFG arcs are
    // statically present but semantically *infeasible* — `start -> end`
    // needs `arrived == parties` false AND `generation == gen` false in the
    // same atomic section (but generation only advances when the last
    // arrival makes the first condition true), and `wait -> wait` needs a
    // wake-up that leaves `generation` unchanged (nothing notifies without
    // advancing it). Structural coverage criteria always admit infeasible
    // obligations; the CoFG criterion is no exception, and the uncovered
    // listing names them precisely.
    for (name, component) in examples::corpus() {
        let pipeline = Pipeline::new(component).unwrap();
        let suite = pipeline.directed_suite(&space_for(name), &GreedyConfig::default());
        let uncovered = suite.coverage.uncovered();
        if name == "Barrier" {
            assert_eq!(
                uncovered.len(),
                2,
                "Barrier should have exactly its two infeasible arcs uncovered: {uncovered:?}"
            );
            assert!(uncovered.iter().any(|(_, a)| a.contains("start -> end")));
            assert!(uncovered.iter().any(|(_, a)| a.contains("wait -> wait")));
        } else {
            assert!(
                suite.coverage.complete(),
                "{name} uncovered arcs: {uncovered:?}"
            );
        }
    }
}

#[test]
fn analyzer_reports_suspect_but_valid_components() {
    let component = jcc_core::model::parse_component(
        "class OneShot { var fired: bool = false; synchronized fn arm() { if (!fired) { wait; } } }",
    )
    .unwrap();
    // Valid but suspicious: wait outside a loop and no notifier anywhere.
    // Validation accepts it; the analyzer reports both defects with
    // failure classes and severities attached.
    assert!(jcc_core::model::validate(&component).is_empty());
    let report = jcc_core::analyze::analyze(&component);
    let classes = report.classes(jcc_core::analyze::Severity::Medium);
    assert!(classes.contains("EF-T5"), "{}", report.render());
    assert!(classes.contains("FF-T5"), "{}", report.render());
}

#[test]
fn explore_and_classify_flags_seeded_deadlock() {
    use jcc_core::vm::ExploreConfig;
    let component = examples::lock_order_deadlock();
    let pipeline = Pipeline::new(component).unwrap();
    let scenario = vec![
        jcc_core::vm::ThreadSpec {
            name: "f".into(),
            calls: vec![CallSpec::new("forward", vec![])],
        },
        jcc_core::vm::ThreadSpec {
            name: "b".into(),
            calls: vec![CallSpec::new("backward", vec![])],
        },
    ];
    let findings = pipeline.explore_and_classify(&scenario, &ExploreConfig::default());
    assert!(
        findings.iter().any(|f| f.class.code() == "FF-T2"),
        "{findings:?}"
    );
}
