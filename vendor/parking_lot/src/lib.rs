//! Offline shim for the `parking_lot` crate, implemented over `std::sync`.
//!
//! The build environment has no access to the crates.io registry, so the
//! workspace path-replaces `parking_lot` with this crate. It reproduces the
//! subset of the API the workspace uses — guard-returning `lock()` (no
//! `LockResult`), `Condvar::wait(&mut guard)`, `wait_for` with a
//! [`WaitTimeoutResult`] — with parking_lot's no-poisoning semantics
//! (a poisoned std lock is transparently recovered).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutex whose `lock` returns the guard directly (never poisons).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so [`Condvar`]
/// can take it out, block, and put the reacquired guard back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on [`MutexGuard`]s in place.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let now = std::time::Instant::now();
        if deadline <= now {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// Reader-writer lock with guard-returning `read`/`write`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
