//! Offline shim for the `fxhash` / `rustc-hash` crates.
//!
//! The build environment has no registry access, so the workspace
//! path-replaces `fxhash` with this crate. It provides the subset the
//! workspace uses: [`FxHasher`] (the multiply-rotate hash function rustc
//! uses for its interning tables), the [`FxHashMap`]/[`FxHashSet`] aliases,
//! [`FxBuildHasher`], and a [`hash64`] convenience function.
//!
//! Two properties matter to the callers and are guaranteed here:
//!
//! * **Deterministic**: no per-process random seed (unlike `SipHasher`'s
//!   `RandomState`). The same input hashes to the same `u64` in every run
//!   and on every platform — byte streams are consumed in little-endian
//!   `u64` chunks regardless of the host's pointer width, so 32- and
//!   64-bit targets agree.
//! * **Cheap**: one rotate, one xor and one multiply per word, plus one
//!   avalanche round at `finish()` (see [`FxHasher`] for why the finalizer
//!   exists). The dedup probes of reachability exploration hash small
//!   fixed-size keys (packed markings, interned token slices, VM state
//!   keys) millions of times; SipHash's per-hash setup dominates at that
//!   grain.
//!
//! FxHash is not collision-resistant against adversarial input. Every use
//! in this workspace hashes machine-generated state vectors, never
//! attacker-controlled data.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The golden-ratio multiplier rustc uses (`0x9e3779b97f4a7c15` truncated
/// odd variant used by Firefox / rustc's FxHash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`]s; `Default` so the map aliases
/// work with `FxHashMap::default()`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The FxHash streaming hasher: `state = (state <<< 5 ^ word) * SEED` per
/// 64-bit word, with an avalanche finalizer in [`Hasher::finish`].
///
/// The finalizer departs from classic FxHash on purpose. A bare
/// multiply-by-odd-constant only propagates entropy *upward*: bit `i` of
/// the product depends solely on bits `0..=i` of the input, so for a
/// single-word key the low bits of the hash are a function of the low bits
/// of the key alone. Hashbrown tables index buckets with the *low* bits of
/// the hash, which turns low-entropy-low-byte keys — exactly the packed
/// markings and small state keys this workspace hashes — into massive
/// bucket clusters (measured: a 19k-state packed exploration ran 2× slower
/// than its SipHash reference before the finalizer). One xor-shift /
/// multiply / xor-shift round spreads every input bit to every output bit
/// and costs a single extra multiply per hash, preserving the "far cheaper
/// than SipHash" property.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

/// Odd multiplier of the finalizer round (from MurmurHash3's fmix64).
const FINALIZE: u64 = 0xff51_afd7_ed55_8ccd;

impl FxHasher {
    /// Fold one 64-bit word into the state.
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let mut h = self.hash;
        h ^= h >> 33;
        h = h.wrapping_mul(FINALIZE);
        h ^ (h >> 33)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume in little-endian u64 chunks with a zero-padded tail, so
        // the result is independent of the host's usize width.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut buf = [0u8; 8];
            buf[..tail.len()].copy_from_slice(tail);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        // Widen so 32- and 64-bit hosts hash `usize` identically.
        self.add(n as u64);
    }

    #[inline]
    fn write_i8(&mut self, n: i8) {
        self.write_u8(n as u8);
    }

    #[inline]
    fn write_i16(&mut self, n: i16) {
        self.write_u16(n as u16);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.write_u32(n as u32);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.write_usize(n as usize);
    }
}

/// Hash any `Hash` value to a `u64` with [`FxHasher`] — the one-shot form
/// used for shard selection and state keys.
#[inline]
pub fn hash64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        let a = hash64(&[1u32, 2, 3][..]);
        let b = hash64(&[1u32, 2, 3][..]);
        assert_eq!(a, b);
        assert_ne!(a, hash64(&[1u32, 2, 4][..]));
    }

    #[test]
    fn chunked_write_matches_padded_tail() {
        // 9 bytes: one full chunk plus a 1-byte zero-padded tail — must not
        // collide with the 8-byte prefix alone.
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn map_and_set_aliases_usable() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(42, "answer");
        assert_eq!(m.get(&42), Some(&"answer"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn high_byte_changes_reach_low_hash_bits() {
        // Keys that differ only in their top byte (place 7 of a packed
        // marking) must land in different hashbrown buckets, i.e. differ in
        // the low bits of the hash. Without the avalanche finalizer every
        // such pair collides modulo 2^56.
        let mut low_bits = HashSet::new();
        for top in 0u64..11 {
            low_bits.insert(hash64(&(top << 56)) & 0x7fff);
        }
        assert_eq!(low_bits.len(), 11, "top-byte entropy lost in low bits");
    }

    #[test]
    fn integer_writes_fold_one_word() {
        let mut h1 = FxHasher::default();
        h1.write_u64(0xDEAD_BEEF);
        let mut h2 = FxHasher::default();
        h2.write_usize(0xDEAD_BEEF);
        assert_eq!(h1.finish(), h2.finish(), "usize widened to u64");
    }
}
