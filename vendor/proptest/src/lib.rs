//! Offline shim for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace
//! path-replaces `proptest` with this crate. It reproduces the subset the
//! workspace's property tests use: the `proptest!` macro (with
//! `#![proptest_config(..)]`), integer-range / tuple / `collection::vec` /
//! `bool::ANY` / `Just` strategies, `prop_map`, `prop_flat_map`,
//! `prop_filter`, `boxed`,
//! `prop_oneof!`, and the `prop_assert*` macros.
//!
//! Semantics: deterministic random-case testing. Each `#[test]` derives a
//! fixed seed from its own name, runs `config.cases` cases, and panics on
//! the first failing case (inputs are not shrunk — the failing case is
//! reproducible because the seed is fixed).

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed derived from the test's name (FNV-1a) so every test is
    /// deterministic and different tests see different streams.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Run configuration. Named `ProptestConfig` to match the upstream prelude
/// alias for `test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values — upstream's `Strategy`, minus shrinking.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        U: Strategy,
        F: Fn(Self::Value) -> U,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.sample(rng)))
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_flat_map` adapter: derives a second strategy from each sampled
/// value (no shrinking, so this is just sample-then-sample).
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn sample(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// `prop_filter` adapter: rejection sampling with a bounded retry budget.
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples: {}", self.reason);
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Uniform choice between boxed alternatives — the `prop_oneof!` backend.
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf(self.0.clone())
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Vec of `elem` samples with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        VecStrategy { elem, size }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// `proptest::bool::ANY` — a uniform boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The property-test entry point. Each contained `#[test] fn` becomes a
/// plain test that samples its bound strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[doc = $doc:expr])* #[test] $(#[$attr:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in -4i64..=4) {
            assert!((3..9).contains(&x));
            assert!((-4..=4).contains(&y));
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0u64..5, crate::bool::ANY), 1..10)) {
            assert!(!v.is_empty() && v.len() < 10);
            for (n, _b) in v {
                assert!(n < 5);
            }
        }
    }

    #[test]
    fn oneof_and_map_cover_all_arms() {
        let s = prop_oneof![
            (0i64..10).prop_map(|x| x),
            (10i64..20).prop_map(|x| x),
        ]
        .boxed();
        let mut rng = crate::TestRng::from_seed(1);
        let mut low = false;
        let mut high = false;
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((0..20).contains(&v));
            if v < 10 {
                low = true;
            } else {
                high = true;
            }
        }
        assert!(low && high);
    }

    #[test]
    fn flat_map_derives_dependent_strategy() {
        // Length-then-contents: the classic flat_map shape.
        let s = (1usize..=8).prop_flat_map(|len| {
            crate::collection::vec(0u64..10, len..=len).prop_map(move |v| (len, v))
        });
        let mut rng = crate::TestRng::from_seed(3);
        for _ in 0..100 {
            let (len, v) = s.sample(&mut rng);
            assert_eq!(v.len(), len);
        }
    }

    #[test]
    fn filter_rejects() {
        let even = (0u32..100).prop_filter("even", |x| x % 2 == 0);
        let mut rng = crate::TestRng::from_seed(2);
        for _ in 0..100 {
            assert_eq!(even.sample(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = crate::collection::vec(0u64..1000, 5..6);
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
