//! Offline shim for the `crossbeam` crate.
//!
//! The build environment has no registry access, so the workspace
//! path-replaces `crossbeam` with this crate. Scoped threads delegate to
//! `std::thread::scope` (stable since 1.63, same structured-concurrency
//! guarantees as `crossbeam::scope`); the spawn API is therefore the std
//! shape — `s.spawn(|| ..)` — rather than crossbeam's `|_| ..`.
//! `utils::CachePadded` is a faithful reimplementation used to keep
//! per-shard locks on separate cache lines.

pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

pub use thread::scope;

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes (covers the common 64-byte
    /// line plus adjacent-line prefetchers) to avoid false sharing
    /// between per-worker slots.
    #[derive(Debug, Default, Clone, Copy)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }
}

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC queue. Upstream's `SegQueue` is lock-free; this shim
    /// is a mutexed `VecDeque` with the same push/pop interface, which is
    /// sufficient for the coarse-grained work batches the workspace moves
    /// through it.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        pub const fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .pop_front()
        }

        pub fn is_empty(&self) -> bool {
            self.inner
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_empty()
        }

        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|p| p.into_inner()).len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;
    use super::utils::CachePadded;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_and_borrow() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| counter.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
    }

    #[test]
    fn seg_queue_fifo() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }
}
