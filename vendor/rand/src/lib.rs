//! Offline shim for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace
//! path-replaces `rand` with this crate. It provides the subset the
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer ranges. The generator is xoshiro256**
//! seeded via SplitMix64 — statistically solid and fully deterministic
//! per seed, which is all the schedule-exploration code requires. It is
//! NOT the upstream StdRng (ChaCha12): absolute sequences differ from
//! upstream, but nothing in this workspace depends on upstream values.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 high bits -> uniform f64 in [0, 1).
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Unbiased-enough modulo reduction (multiply-shift; bias < 2^-32 for the
/// span sizes this workspace uses).
fn reduce(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for upstream StdRng).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream does for small seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace only needs determinism, not a distinct algorithm.
    pub type SmallRng = StdRng;
}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = r.gen_range(1u64..=3);
            assert!((1..=3).contains(&y));
            let z = r.gen_range(-10i64..10);
            assert!((-10..10).contains(&z));
        }
    }

    #[test]
    fn all_values_reachable_in_small_range() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
