//! Offline shim for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace
//! path-replaces `criterion` with this crate. It keeps the API the
//! workspace's benches use (`criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, benchmark groups with
//! `bench_with_input`/`throughput`, `BenchmarkId`) and implements a small
//! wall-clock harness: per benchmark it auto-scales an iteration batch to
//! ~10 ms, takes `sample_size` samples, and prints min/median/mean
//! nanoseconds per iteration. No statistics beyond that, no plots, no
//! saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation — recorded and echoed, no rate math beyond
/// elements/second in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to the closure given to `iter`; measures the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the batch until one batch takes >= ~10 ms
        // (cap the batch to keep total time bounded for slow routines).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.total_cmp(b));
        let min = ns[0];
        let median = ns[ns.len() / 2];
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 / (median * 1e-9))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 / (median * 1e-9))
            }
            None => String::new(),
        };
        println!(
            "{name:<50} min {min:>12.1} ns  median {median:>12.1} ns  mean {mean:>12.1} ns{rate}"
        );
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name, None);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id), self.throughput);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes --bench (and possibly filters); this
            // harness runs everything regardless.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("shim/add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        let mut group = c.benchmark_group("shim/group");
        group.sample_size(3);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = tiny_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
